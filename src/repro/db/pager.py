"""Storage backends and the buffer pool.

The buffer pool caches :class:`~repro.db.page.Page` objects over a storage
backend and evicts with LRU, flushing dirty pages on the way out.  It keeps
I/O counters so benchmarks can report logical vs. physical page accesses —
the currency the paper uses when arguing the ETI makes few lookups.

Callers must re-fetch pages through :meth:`BufferPool.get_page` for every
operation instead of holding ``Page`` references across calls; a page object
becomes stale once evicted.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.db.errors import BufferPoolError
from repro.db.page import Page, PAGE_SIZE


class InMemoryStorage:
    """Page storage backed by a list of byte buffers."""

    def __init__(self):
        self._pages: list[bytes] = []

    @property
    def num_pages(self) -> int:
        return len(self._pages)

    def allocate(self) -> int:
        """Add a zeroed page and return its page number."""
        self._pages.append(bytes(PAGE_SIZE))
        return len(self._pages) - 1

    def read(self, page_no: int) -> bytes:
        """Return the raw bytes of page ``page_no``."""
        return self._pages[page_no]

    def write(self, page_no: int, data: bytes) -> None:
        """Overwrite page ``page_no`` with ``data``."""
        if len(data) != PAGE_SIZE:
            raise BufferPoolError("page write with wrong size")
        self._pages[page_no] = bytes(data)

    def close(self) -> None:
        """Release all pages."""
        self._pages.clear()


class FileStorage:
    """Page storage backed by a single file on disk."""

    def __init__(self, path: str):
        self.path = path
        flags = os.O_RDWR | os.O_CREAT
        self._fd = os.open(path, flags, 0o644)
        size = os.fstat(self._fd).st_size
        if size % PAGE_SIZE:
            raise BufferPoolError(f"{path} is not page aligned ({size} bytes)")
        self._num_pages = size // PAGE_SIZE

    @property
    def num_pages(self) -> int:
        return self._num_pages

    def allocate(self) -> int:
        """Extend the file by one zeroed page; return its page number."""
        page_no = self._num_pages
        os.pwrite(self._fd, bytes(PAGE_SIZE), page_no * PAGE_SIZE)
        self._num_pages += 1
        return page_no

    def read(self, page_no: int) -> bytes:
        """Read one page from the file."""
        data = os.pread(self._fd, PAGE_SIZE, page_no * PAGE_SIZE)
        if len(data) != PAGE_SIZE:
            raise BufferPoolError(f"short read on page {page_no}")
        return data

    def write(self, page_no: int, data: bytes) -> None:
        """Write one page to the file."""
        if len(data) != PAGE_SIZE:
            raise BufferPoolError("page write with wrong size")
        os.pwrite(self._fd, data, page_no * PAGE_SIZE)

    def close(self) -> None:
        """Close the backing file descriptor."""
        if self._fd >= 0:
            os.close(self._fd)
            self._fd = -1


@dataclass
class PoolStats:
    """Buffer pool access counters."""

    hits: int = 0
    misses: int = 0
    physical_reads: int = 0
    physical_writes: int = 0
    evictions: int = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.hits = 0
        self.misses = 0
        self.physical_reads = 0
        self.physical_writes = 0
        self.evictions = 0

    @property
    def logical_accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        total = self.logical_accesses
        return self.hits / total if total else 0.0


class BufferPool:
    """LRU page cache over a storage backend."""

    def __init__(self, storage=None, capacity: int = 1024):
        if capacity < 1:
            raise BufferPoolError("buffer pool needs capacity >= 1")
        self.storage = storage if storage is not None else InMemoryStorage()
        self.capacity = capacity
        self.stats = PoolStats()
        self._cache: OrderedDict[int, Page] = OrderedDict()
        # Even read-only page access reorders (and can evict from) the LRU
        # map, so concurrent readers — the parallel batch matcher — must
        # serialize around it.  Reentrant: _install runs under get_page.
        self._lock = threading.RLock()

    @property
    def num_pages(self) -> int:
        return self.storage.num_pages

    def allocate_page(self) -> int:
        """Allocate a fresh page in storage, cache it, return its number."""
        with self._lock:
            page_no = self.storage.allocate()
            page = Page()
            page.dirty = True
            self._install(page_no, page)
            return page_no

    def get_page(self, page_no: int) -> Page:
        """Return the page, reading it from storage on a miss."""
        with self._lock:
            page = self._cache.get(page_no)
            if page is not None:
                self.stats.hits += 1
                self._cache.move_to_end(page_no)
                return page
            self.stats.misses += 1
            if not 0 <= page_no < self.storage.num_pages:
                raise BufferPoolError(f"page {page_no} does not exist")
            self.stats.physical_reads += 1
            page = Page(self.storage.read(page_no))
            self._install(page_no, page)
            return page

    def flush(self) -> None:
        """Write all dirty cached pages back to storage."""
        with self._lock:
            for page_no, page in self._cache.items():
                if page.dirty:
                    self.storage.write(page_no, bytes(page.data))
                    page.dirty = False
                    self.stats.physical_writes += 1

    def close(self) -> None:
        """Flush dirty pages and release the cache and storage."""
        with self._lock:
            self.flush()
            self._cache.clear()
            self.storage.close()

    def _install(self, page_no: int, page: Page) -> None:
        while len(self._cache) >= self.capacity:
            evict_no, evicted = self._cache.popitem(last=False)
            self.stats.evictions += 1
            if evicted.dirty:
                self.storage.write(evict_no, bytes(evicted.data))
                self.stats.physical_writes += 1
        self._cache[page_no] = page
        self._cache.move_to_end(page_no)
