"""Offline consistency checking for a snapshotted database (``repro fsck``).

Three layers of checks, cheapest first:

1. **Physical**: the metadata parses, the write-ahead log scans cleanly
   (header intact; a torn tail is a *warning* — recovery discards it —
   but a generation that matches neither the snapshot's nor its
   predecessor is an error), and every page passes its CRC32 from the
   snapshot manifest.  Pages whose newest image lives in the committed
   log tail are exempt (their record CRCs vouched for them during the
   scan) and get a structural slotted-layout check instead.
2. **Logical**: the database actually loads — catalog applies, indexes
   rebuild, heaps decode.
3. **Referential**: every tid in every ETI tid-list resolves to a live
   reference tuple in a tid-indexed relation, and no non-stop row claims
   a frequency below its tid-list length.

The report's :attr:`FsckReport.exit_code` follows the fsck convention:
0 clean, 1 recoverable findings only (warnings), 2 corruption (errors).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

from repro.db.errors import DatabaseError
from repro.db.page import Page
from repro.db.pager import FileStorage, page_checksum
from repro.db.snapshot import load_database
from repro.db.wal import HEADER_SIZE, WalFile, scan_wal

#: Name of the unique tid index reference relations carry (mirrors
#: ``repro.core.reference.TID_INDEX`` without importing core from db).
_TID_INDEX = "tid_idx"


@dataclass
class FsckReport:
    """Findings of one :func:`check_database` run."""

    errors: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)
    pages_checked: int = 0
    wal_committed_txns: int = 0
    wal_torn_bytes: int = 0
    eti_rows_checked: int = 0
    eti_tids_checked: int = 0

    @property
    def ok(self) -> bool:
        """True when no errors were found (warnings allowed)."""
        return not self.errors

    @property
    def exit_code(self) -> int:
        """0 clean, 1 warnings only, 2 errors."""
        if self.errors:
            return 2
        if self.warnings:
            return 1
        return 0

    def lines(self) -> list[str]:
        """Human-readable report, one finding per line."""
        out = [
            f"pages checked:       {self.pages_checked}",
            f"wal committed txns:  {self.wal_committed_txns}",
            f"wal torn bytes:      {self.wal_torn_bytes}",
            f"eti rows checked:    {self.eti_rows_checked}",
            f"eti tids checked:    {self.eti_tids_checked}",
        ]
        out.extend(f"WARNING: {w}" for w in self.warnings)
        out.extend(f"ERROR: {e}" for e in self.errors)
        out.append(
            {0: "clean", 1: "recoverable findings only", 2: "corruption found"}[
                self.exit_code
            ]
        )
        return out


def _check_wal(page_path: str, generation: int, report: FsckReport) -> frozenset[int]:
    """Scan the log; return pages whose newest committed image lives there."""
    wal_path = page_path + ".wal"
    if not os.path.exists(wal_path):
        return frozenset()
    wal_file = WalFile(wal_path)
    try:
        try:
            scan = scan_wal(wal_file)
        except DatabaseError as exc:
            report.errors.append(f"WAL unusable: {exc}")
            return frozenset()
        if scan.was_empty:
            return frozenset()
        report.wal_committed_txns = scan.committed_txns
        torn = wal_file.size - scan.valid_end
        if torn > 0:
            report.wal_torn_bytes = torn
            report.warnings.append(
                f"WAL has a torn tail of {torn} bytes (recovery will discard it)"
            )
        if scan.valid_end > HEADER_SIZE and scan.generation not in (
            generation,
            generation - 1,
        ):
            report.errors.append(
                f"WAL generation {scan.generation} matches neither snapshot "
                f"generation {generation} nor its predecessor"
            )
        if scan.generation == generation - 1:
            report.warnings.append(
                "WAL is one generation behind the snapshot (pre-checkpoint "
                "leftover; recovery will discard it)"
            )
            return frozenset()
        return frozenset(scan.committed)
    finally:
        wal_file.close()


def _check_pages(
    page_path: str,
    checksums: list[int | None] | None,
    wal_pages: frozenset[int],
    report: FsckReport,
) -> None:
    """Verify page CRCs from the manifest; structurally check log-tail pages."""
    storage = FileStorage(page_path)
    try:
        listed = len(checksums) if checksums is not None else 0
        if listed > storage.num_pages:
            report.errors.append(
                f"snapshot lists {listed} pages but the page file holds "
                f"{storage.num_pages}"
            )
        for page_no in range(storage.num_pages):
            data = storage.read(page_no)
            report.pages_checked += 1
            expected = (
                checksums[page_no]
                if checksums is not None and page_no < listed
                else None
            )
            if page_no in wal_pages or expected is None:
                # Newest image lives in the log (or predates checksummed
                # snapshots); fall back to a structural layout check.
                for problem in Page(data).validate():
                    report.warnings.append(
                        f"page {page_no} structurally suspect: {problem}"
                    )
                continue
            actual = page_checksum(data)
            if actual != expected:
                report.errors.append(
                    f"page {page_no} checksum mismatch "
                    f"(expected {expected:#010x}, got {actual:#010x})"
                )
    finally:
        storage.close()


def check_database(page_path: str, eti_name: str = "eti") -> FsckReport:
    """Run every fsck layer over the snapshot at ``page_path``.

    Read-only: nothing is repaired, the log is not truncated, and the
    page file is opened only for reading (``repro recover`` is the
    repairing counterpart).
    """
    report = FsckReport()
    meta_file = page_path + ".meta.json"
    if not os.path.exists(page_path):
        report.errors.append(f"no page file at {page_path}")
        return report
    if not os.path.exists(meta_file):
        report.errors.append(f"no snapshot metadata at {meta_file}")
        return report
    try:
        with open(meta_file) as handle:
            meta = json.load(handle)
    except (OSError, ValueError) as exc:
        report.errors.append(f"snapshot metadata unreadable: {exc}")
        return report
    generation = int(meta.get("generation", 0))

    wal_pages = _check_wal(page_path, generation, report)
    _check_pages(page_path, meta.get("page_checksums"), wal_pages, report)
    if report.errors:
        return report  # physically broken: loading would just re-raise

    try:
        db = load_database(page_path)
    except DatabaseError as exc:
        report.errors.append(f"database does not load: {exc}")
        return report
    try:
        known_tids: set[int] = set()
        for name in db.relation_names():
            relation = db.relation(name)
            if _TID_INDEX in relation.index_names():
                known_tids.update(row[0] for row in relation.scan())
        if eti_name in db:
            for row in db.relation(eti_name).scan():
                report.eti_rows_checked += 1
                tid_list = row[4]
                if tid_list is None:
                    continue  # stop q-gram: nothing to resolve
                if row[3] < len(tid_list):
                    report.warnings.append(
                        f"ETI row {row[0]!r}/{row[1]}/{row[2]} frequency "
                        f"{row[3]} below tid-list length {len(tid_list)}"
                    )
                for tid in tid_list:
                    report.eti_tids_checked += 1
                    if tid not in known_tids:
                        report.errors.append(
                            f"ETI row {row[0]!r}/{row[1]}/{row[2]} references "
                            f"tid {tid} absent from every tid-indexed relation"
                        )
    finally:
        db.close()
    return report
