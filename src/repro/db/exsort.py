"""External merge sort.

The paper builds the ETI by materializing a pre-ETI relation and running
"select QGram, Coordinate, Column, Tid from pre-ETI order by QGram,
Coordinate, Column, Tid" — a sort whose input is usually larger than main
memory.  This module implements the textbook two-phase algorithm the
database system would use: bounded-memory *run generation* followed by a
k-way *merge* driven by a heap.

Runs are spilled to temporary files using a small length-prefixed pickle
framing, so sorting really is external — memory usage is bounded by
``memory_limit`` rows regardless of input size.
"""

from __future__ import annotations

import heapq
import os
import pickle
import tempfile
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator

DEFAULT_MEMORY_LIMIT = 100_000


@dataclass
class SortStats:
    """Accounting for one external sort."""

    rows_in: int = 0
    runs: int = 0
    spilled_rows: int = 0
    merge_passes: int = 0


class _RunWriter:
    """Append rows to a temp file as length-prefixed pickles."""

    def __init__(self, directory: str | None) -> None:
        fd, self.path = tempfile.mkstemp(prefix="repro-sortrun-", dir=directory)
        self._file = os.fdopen(fd, "wb")

    def write_rows(self, rows: Iterable[Any]) -> None:
        for row in rows:
            payload = pickle.dumps(row, protocol=pickle.HIGHEST_PROTOCOL)
            self._file.write(len(payload).to_bytes(4, "little"))
            self._file.write(payload)

    def close(self) -> None:
        self._file.close()


def _read_run(path: str) -> Iterator[Any]:
    with open(path, "rb") as run_file:
        while True:
            header = run_file.read(4)
            if not header:
                return
            length = int.from_bytes(header, "little")
            yield pickle.loads(run_file.read(length))
    # Caller removes the file after the merge finishes.


def external_sort(
    rows: Iterable[Any],
    key: Callable[[Any], Any] = lambda row: row,
    memory_limit: int = DEFAULT_MEMORY_LIMIT,
    tmp_dir: str | None = None,
    stats: SortStats | None = None,
) -> Iterator[Any]:
    """Yield ``rows`` in ascending ``key`` order using bounded memory.

    ``memory_limit`` is the maximum number of rows held in memory at once.
    If the input fits in one run, no temp files are created.  The sort is
    stable across runs (ties resolve in input order) because the merge heap
    breaks key ties by run sequence number.
    """
    if memory_limit < 2:
        # Argument validation: a bad limit is a caller bug, so ValueError
        # is the narrowest correct type, not a DatabaseError.
        raise ValueError(  # reprolint: disable=exception-taxonomy
            "memory_limit must be at least 2 rows"
        )
    if stats is None:
        stats = SortStats()

    run_paths: list[str] = []
    buffer: list[Any] = []
    try:
        for row in rows:
            stats.rows_in += 1
            buffer.append(row)
            if len(buffer) >= memory_limit:
                buffer.sort(key=key)
                writer = _RunWriter(tmp_dir)
                writer.write_rows(buffer)
                writer.close()
                run_paths.append(writer.path)
                stats.runs += 1
                stats.spilled_rows += len(buffer)
                buffer = []

        buffer.sort(key=key)
        if not run_paths:
            stats.runs = 1 if buffer else 0
            yield from buffer
            return

        stats.runs += 1
        stats.merge_passes = 1
        streams: list[Iterator[Any]] = [_read_run(path) for path in run_paths]
        streams.append(iter(buffer))
        yield from _merge(streams, key)
    finally:
        for path in run_paths:
            try:
                os.remove(path)
            except OSError:
                pass


def _merge(streams: list[Iterator[Any]], key: Callable[[Any], Any]) -> Iterator[Any]:
    """K-way merge of individually sorted streams."""
    heap: list[tuple[Any, int, Any, Iterator[Any]]] = []
    for seq, stream in enumerate(streams):
        for row in stream:
            heap.append((key(row), seq, row, stream))
            break
    heapq.heapify(heap)
    while heap:
        _, seq, row, stream = heapq.heappop(heap)
        yield row
        for nxt in stream:
            heapq.heappush(heap, (key(nxt), seq, nxt, stream))
            break
