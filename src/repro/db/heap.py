"""Heap files: unordered collections of records over the buffer pool.

A heap file owns a contiguous, growable set of pages from one buffer pool.
Records are addressed by :class:`RecordId` (page number within the file plus
slot).  Inserts go to the last page with room, falling back to allocating a
new page — the append-mostly pattern the ETI build relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.db.errors import PageFullError, RecordNotFoundError
from repro.db.page import MAX_RECORD_SIZE
from repro.db.pager import BufferPool


@dataclass(frozen=True, order=True)
class RecordId:
    """Address of a record: page index within the heap file, plus slot."""

    page_index: int
    slot: int


class HeapFile:
    """A growable bag of byte records."""

    def __init__(self, pool: BufferPool) -> None:
        self.pool = pool
        self._page_numbers: list[int] = []
        self._record_count = 0

    def __len__(self) -> int:
        return self._record_count

    @property
    def num_pages(self) -> int:
        return len(self._page_numbers)

    def insert(self, record: bytes) -> RecordId:
        """Store ``record`` and return its id."""
        if len(record) > MAX_RECORD_SIZE:
            raise PageFullError(
                f"record of {len(record)} bytes exceeds page capacity"
            )
        if self._page_numbers:
            last_index = len(self._page_numbers) - 1
            page = self.pool.get_page(self._page_numbers[last_index])
            if page.can_fit(record):
                slot = page.insert(record)
                self._record_count += 1
                return RecordId(last_index, slot)
        page_no = self.pool.allocate_page()
        self._page_numbers.append(page_no)
        page = self.pool.get_page(page_no)
        slot = page.insert(record)
        self._record_count += 1
        return RecordId(len(self._page_numbers) - 1, slot)

    def read(self, rid: RecordId) -> bytes:
        """Fetch the record stored at ``rid``."""
        page = self.pool.get_page(self._resolve(rid))
        return page.read(rid.slot)

    def delete(self, rid: RecordId) -> None:
        """Delete the record at ``rid``."""
        page = self.pool.get_page(self._resolve(rid))
        page.delete(rid.slot)
        self._record_count -= 1

    def scan(self) -> Iterator[tuple[RecordId, bytes]]:
        """Yield ``(rid, record)`` for every live record, in page order."""
        for page_index, page_no in enumerate(self._page_numbers):
            page = self.pool.get_page(page_no)
            for slot, record in page.records():
                yield RecordId(page_index, slot), record

    def _resolve(self, rid: RecordId) -> int:
        if not 0 <= rid.page_index < len(self._page_numbers):
            raise RecordNotFoundError(f"no page index {rid.page_index} in heap file")
        return self._page_numbers[rid.page_index]
