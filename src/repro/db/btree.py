"""A B+-tree index.

Keys are arbitrary comparable Python values (the engine uses tuples of
column values); values are opaque (record ids).  The tree supports point
lookups, ordered range scans, sorted bulk-loading (used to build the ETI's
clustered index after the sort phase), and deletion.

Duplicate keys (``unique=False``) are stored internally as unique composite
keys ``(key, seqno)`` with a monotonically increasing sequence number.  This
keeps every node's separator invariant exact — left subtree strictly below
the separator, right subtree at or above — so duplicate runs can never
straddle a separator ambiguously.

Deletes are *lazy*: the entry is removed from its leaf but underfull leaves
are not rebalanced.  This matches the usage pattern of the paper — the ETI
is rebuilt, not incrementally shrunk — and mirrors how several production
engines defer index compaction.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Any, Iterator

from repro.db.errors import DuplicateKeyError, RecordNotFoundError, SortOrderError

DEFAULT_ORDER = 64


class _Leaf:
    __slots__ = ("keys", "values", "next")

    def __init__(self) -> None:
        self.keys: list[Any] = []
        self.values: list[Any] = []
        self.next: _Leaf | None = None


class _Internal:
    __slots__ = ("keys", "children")

    def __init__(self) -> None:
        # children[i] holds keys < keys[i]; children[i+1] holds keys >= keys[i].
        self.keys: list[Any] = []
        self.children: list[Any] = []


class BPlusTree:
    """B+-tree mapping comparable keys to values.

    With ``unique=True`` (the default) inserting an existing key raises
    :class:`DuplicateKeyError`; with ``unique=False`` duplicate keys are kept
    in insertion order and all surface in lookups and scans.
    """

    def __init__(self, order: int = DEFAULT_ORDER, unique: bool = True) -> None:
        if order < 4:
            raise ValueError("B+-tree order must be at least 4")
        self.order = order
        self.unique = unique
        self._root: _Leaf | _Internal = _Leaf()
        self._size = 0
        self._seq = 0

    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        """Number of levels (a lone leaf has height 1)."""
        height = 1
        node = self._root
        while isinstance(node, _Internal):
            height += 1
            node = node.children[0]
        return height

    # ------------------------------------------------------------------
    # Key wrapping: non-unique trees store (key, seqno) composites.
    # ------------------------------------------------------------------

    def _wrap_new(self, key: Any) -> Any:
        if self.unique:
            return key
        self._seq += 1
        return (key, self._seq)

    def _unwrap(self, internal_key: Any) -> Any:
        return internal_key if self.unique else internal_key[0]

    def _low_probe(self, key: Any) -> Any:
        """An internal key that sorts before every entry stored for ``key``."""
        # (key,) < (key, seqno) for any seqno, by tuple prefix ordering.
        return key if self.unique else (key,)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def insert(self, key: Any, value: Any) -> None:
        """Insert one ``key -> value`` entry."""
        if self.unique and self.search(key):
            raise DuplicateKeyError(f"duplicate key {key!r}")
        internal_key = self._wrap_new(key)
        split = self._insert(self._root, internal_key, value)
        if split is not None:
            sep_key, right = split
            new_root = _Internal()
            new_root.keys = [sep_key]
            new_root.children = [self._root, right]
            self._root = new_root
        self._size += 1

    def delete(self, key: Any, value: Any | None = None) -> int:
        """Remove entries with ``key``.

        With ``value`` given, remove only matching ``(key, value)`` pairs.
        Returns the number of removed entries; raises
        :class:`RecordNotFoundError` if nothing matched.
        """
        probe = self._low_probe(key)
        leaf = self._find_leaf(probe)
        removed = 0
        while leaf is not None:
            index = bisect_left(leaf.keys, probe)
            if index == len(leaf.keys):
                leaf = leaf.next
                continue
            if self._unwrap(leaf.keys[index]) != key:
                break
            while index < len(leaf.keys) and self._unwrap(leaf.keys[index]) == key:
                if value is None or leaf.values[index] == value:
                    del leaf.keys[index]
                    del leaf.values[index]
                    removed += 1
                else:
                    index += 1
            if index < len(leaf.keys):
                # A larger key (or a skipped entry) follows: run is over.
                if self._unwrap(leaf.keys[index]) != key or value is None:
                    break
            leaf = leaf.next
        if not removed:
            raise RecordNotFoundError(f"key {key!r} not in index")
        self._size -= removed
        return removed

    def _insert(
        self, node: _Leaf | _Internal, internal_key: Any, value: Any
    ) -> tuple[Any, _Leaf | _Internal] | None:
        """Recursive insert; returns ``(separator, new_right)`` on split."""
        if isinstance(node, _Leaf):
            index = bisect_left(node.keys, internal_key)
            node.keys.insert(index, internal_key)
            node.values.insert(index, value)
            if len(node.keys) > self.order:
                return self._split_leaf(node)
            return None
        index = bisect_right(node.keys, internal_key)
        split = self._insert(node.children[index], internal_key, value)
        if split is not None:
            sep_key, right = split
            node.keys.insert(index, sep_key)
            node.children.insert(index + 1, right)
            if len(node.children) > self.order:
                return self._split_internal(node)
        return None

    def _split_leaf(self, leaf: _Leaf) -> tuple[Any, _Leaf]:
        mid = len(leaf.keys) // 2
        right = _Leaf()
        right.keys = leaf.keys[mid:]
        right.values = leaf.values[mid:]
        leaf.keys = leaf.keys[:mid]
        leaf.values = leaf.values[:mid]
        right.next = leaf.next
        leaf.next = right
        return right.keys[0], right

    def _split_internal(self, node: _Internal) -> tuple[Any, _Internal]:
        mid = len(node.keys) // 2
        sep = node.keys[mid]
        right = _Internal()
        right.keys = node.keys[mid + 1 :]
        right.children = node.children[mid + 1 :]
        node.keys = node.keys[:mid]
        node.children = node.children[: mid + 1]
        return sep, right

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def search(self, key: Any) -> list[Any]:
        """Return all values stored under ``key`` (empty list if absent)."""
        probe = self._low_probe(key)
        results: list[Any] = []
        leaf = self._find_leaf(probe)
        while leaf is not None:
            index = bisect_left(leaf.keys, probe)
            if index == len(leaf.keys):
                leaf = leaf.next
                continue
            if self._unwrap(leaf.keys[index]) != key:
                break
            while index < len(leaf.keys) and self._unwrap(leaf.keys[index]) == key:
                results.append(leaf.values[index])
                index += 1
            if index < len(leaf.keys):
                break
            leaf = leaf.next
        return results

    def get(self, key: Any, default: Any = None) -> Any:
        """Return the first value under ``key`` or ``default``."""
        values = self.search(key)
        return values[0] if values else default

    def __contains__(self, key: Any) -> bool:
        return bool(self.search(key))

    def range(
        self,
        lo: Any = None,
        hi: Any = None,
        include_lo: bool = True,
        include_hi: bool = False,
    ) -> Iterator[tuple[Any, Any]]:
        """Yield ``(key, value)`` pairs with ``lo <= key < hi`` (by default).

        ``None`` bounds are open-ended.
        """
        if lo is None:
            leaf = self._leftmost_leaf()
            index = 0
        else:
            probe = self._low_probe(lo)
            leaf = self._find_leaf(probe)
            index = bisect_left(leaf.keys, probe)
        while leaf is not None:
            while index < len(leaf.keys):
                key = self._unwrap(leaf.keys[index])
                if lo is not None and not include_lo and key == lo:
                    index += 1
                    continue
                if hi is not None:
                    if include_hi:
                        if key > hi:
                            return
                    elif key >= hi:
                        return
                yield key, leaf.values[index]
                index += 1
            leaf = leaf.next
            index = 0

    def items(self) -> Iterator[tuple[Any, Any]]:
        """Yield every ``(key, value)`` pair in key order."""
        return self.range()

    def keys(self) -> Iterator[Any]:
        """Yield every key in order (duplicates repeated)."""
        for key, _ in self.items():
            yield key

    # ------------------------------------------------------------------
    # Bulk load
    # ------------------------------------------------------------------

    @classmethod
    def bulk_load(
        cls,
        items: list[tuple[Any, Any]],
        order: int = DEFAULT_ORDER,
        unique: bool = True,
    ) -> "BPlusTree":
        """Build a tree from ``items`` sorted by key.

        This is the fast path used after the ETI sort phase: leaves are
        packed left to right and internal levels are built bottom-up, so the
        build is linear in the number of entries.
        """
        tree = cls(order=order, unique=unique)
        if not items:
            return tree
        for (a, _), (b, _) in zip(items, items[1:]):
            if a > b:
                raise SortOrderError("bulk_load requires key-sorted items")
            if unique and a == b:
                raise DuplicateKeyError(f"duplicate key {a!r} in bulk load")
        if unique:
            internal_items = list(items)
        else:
            internal_items = []
            for key, value in items:
                tree._seq += 1
                internal_items.append(((key, tree._seq), value))
        fill = max(2, (order * 3) // 4)
        leaves: list[_Leaf] = []
        for start in range(0, len(internal_items), fill):
            leaf = _Leaf()
            chunk = internal_items[start : start + fill]
            leaf.keys = [k for k, _ in chunk]
            leaf.values = [v for _, v in chunk]
            if leaves:
                leaves[-1].next = leaf
            leaves.append(leaf)
        tree._size = len(items)
        level: list[Any] = leaves
        first_keys = [leaf.keys[0] for leaf in leaves]
        while len(level) > 1:
            parents: list[_Internal] = []
            parent_first_keys: list[Any] = []
            for start in range(0, len(level), fill):
                children = level[start : start + fill]
                node = _Internal()
                node.children = children
                node.keys = first_keys[start + 1 : start + len(children)]
                parents.append(node)
                parent_first_keys.append(first_keys[start])
            level = parents
            first_keys = parent_first_keys
        tree._root = level[0]
        return tree

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _find_leaf(self, probe: Any) -> _Leaf:
        """Descend to the leftmost leaf that may contain keys >= ``probe``."""
        node = self._root
        while isinstance(node, _Internal):
            node = node.children[bisect_right(node.keys, probe)]
        return node

    def _leftmost_leaf(self) -> _Leaf:
        node = self._root
        while isinstance(node, _Internal):
            node = node.children[0]
        return node

    def check_invariants(self) -> None:
        """Verify structural invariants; raise AssertionError on violation.

        Used by property-based tests: keys sorted within nodes, leaf chain
        sorted globally, entry count consistent.
        """
        seen = 0
        prev_key = None
        for key, _ in self.items():
            if prev_key is not None:
                assert not key < prev_key, "leaf chain out of order"
                if self.unique:
                    assert key != prev_key, "duplicate key in unique tree"
            prev_key = key
            seen += 1
        assert seen == self._size, f"size mismatch: scanned {seen}, size {self._size}"
        self._check_node(self._root)

    def _check_node(self, node: _Leaf | _Internal) -> None:
        if isinstance(node, _Leaf):
            assert node.keys == sorted(node.keys), "unsorted leaf keys"
            assert len(node.keys) == len(node.values), "leaf key/value mismatch"
            return
        assert node.keys == sorted(node.keys), "unsorted internal keys"
        assert len(node.children) == len(node.keys) + 1, "fanout mismatch"
        for child in node.children:
            self._check_node(child)
