"""Saving and reopening a database across processes.

§6.2.2.1: "Because we persist the ETI as a standard indexed relation, we
can use it for subsequent batches of input tuples if the reference table
does not change."  Page data already lives in the
:class:`~repro.db.pager.FileStorage` file; this module persists the missing
piece — the catalog metadata (schemas, heap page lists, index definitions)
— so a built reference relation + ETI can be reopened without rebuilding.

Durability protocol (v3 snapshots):

- :func:`save_database` is a *checkpoint*: committed WAL page images are
  applied to the page file (fsync'd), the metadata is written atomically
  (temp file + ``os.replace``) carrying a **generation** number one past
  the log's, and only then is the log emptied and stamped with the same
  generation.  A crash at any point leaves a loadable pair.
- :func:`load_database` verifies the triple agrees: a log whose
  generation matches the metadata is a live tail and is replayed; a log
  exactly one generation behind is a pre-checkpoint leftover and is
  discarded; anything else is refused.  Page checksums are verified
  against the metadata, except pages whose newest image lives in the log
  (their record CRCs already vouched for them).

The metadata file is JSON, next to the page file by default.  Version-2
snapshots (no generation) and version-1 (no checksums) still load.
"""

from __future__ import annotations

import json
import os
from typing import Callable

from repro.db.catalog import apply_catalog, encode_catalog
from repro.db.database import Database
from repro.db.errors import DatabaseError, PageCorruptionError, WalError
from repro.db.pager import BufferPool, FileStorage, StorageBackend, page_checksum
from repro.db.wal import WalFile, WalFileLike, WalStorage, scan_wal

_FORMAT_VERSION = 3
# Version 1 snapshots (no page checksums) and version 2 (no generation)
# still load; they just carry less to verify.
_SUPPORTED_VERSIONS = (1, 2, 3)


def _meta_path(page_path: str) -> str:
    return page_path + ".meta.json"


def _wal_path(page_path: str) -> str:
    return page_path + ".wal"


def _previous_generation(meta_file: str) -> int:
    """The generation recorded in an existing metadata file (0 if none)."""
    if not os.path.exists(meta_file):
        return 0
    try:
        with open(meta_file) as handle:
            return int(json.load(handle).get("generation", 0))
    except (OSError, ValueError):
        return 0


def _write_meta_atomic(path: str, meta: dict[str, object]) -> None:
    """Write ``meta`` as JSON via temp file + ``os.replace`` + fsync.

    A reader never observes a torn metadata file: it sees either the
    previous complete snapshot or the new one.  The parent directory is
    fsync'd after the rename so the replacement itself is durable — the
    checkpoint's next step (``wal.reset``) stamps the log with the new
    generation, and a crash must not be able to pair that log with the
    *old* metadata (a generation mismatch no accepted load branch covers).
    """
    tmp = path + ".tmp"
    with open(tmp, "w") as handle:
        json.dump(meta, handle)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    dir_fd = os.open(os.path.dirname(os.path.abspath(path)), os.O_RDONLY)
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)


def save_database(db: Database, page_path: str | None = None) -> str:
    """Checkpoint the database and write catalog metadata atomically.

    Returns the metadata path.  ``page_path`` defaults to the path of the
    database's file storage; an in-memory database cannot be snapshotted
    (there is no page file to reopen).  For a WAL-backed database this is
    the checkpoint: the log's committed images migrate into the page
    file, the metadata and the emptied log are stamped with the next
    generation, and steady-state reads stop paying the log-tail merge.
    """
    wal = db.pool.wal
    storage = wal.inner if wal is not None else db.pool.storage
    if page_path is None:
        if not isinstance(storage, FileStorage):
            raise DatabaseError(
                "cannot snapshot an in-memory database; open it with "
                "Database.on_disk() first"
            )
        page_path = storage.path
    meta_file = _meta_path(page_path)

    if wal is not None:
        if wal.in_transaction:
            raise DatabaseError("cannot snapshot inside an open transaction")
        db.pool.flush()
        wal.apply_committed()
        generation = wal.generation + 1
    else:
        db.pool.flush()
        generation = _previous_generation(meta_file) + 1

    ledger = db.pool.page_checksums()
    checksums = [
        ledger.get(page_no)
        if ledger.get(page_no) is not None
        else page_checksum(storage.read(page_no))
        for page_no in range(storage.num_pages)
    ]
    meta = {
        "version": _FORMAT_VERSION,
        "generation": generation,
        "page_checksums": checksums,
        "relations": encode_catalog(db),
    }
    _write_meta_atomic(meta_file, meta)

    if wal is not None:
        wal.reset(generation)
    else:
        # A leftover log from an earlier WAL-enabled run is now stale in a
        # way the generation rules cannot always prove — remove it.
        stale = _wal_path(page_path)
        if os.path.exists(stale):
            os.remove(stale)
    return meta_file


def _refuse_live_wal_tail(page_path: str, generation: int) -> None:
    """Refuse a ``wal=False`` open that would shadow committed log data.

    A non-empty log whose generation matches the snapshot's holds
    committed-but-uncheckpointed transactions; opening without WAL
    recovery would silently serve the stale pre-tail state — and a later
    :func:`save_database` on that handle deletes the log, making the loss
    permanent.  A stale log (one generation behind) or an unparseable one
    holds nothing recoverable and is ignored, as before.
    """
    wal_path = _wal_path(page_path)
    if not os.path.exists(wal_path):
        return
    log = WalFile(wal_path)
    try:
        scan = scan_wal(log)
    except WalError:
        return  # not one of our logs — nothing committed to lose
    finally:
        log.close()
    if scan.was_empty or scan.generation != generation:
        return
    if scan.committed_txns > 0:
        raise DatabaseError(
            f"{wal_path} holds {scan.committed_txns} committed "
            f"transaction(s) not yet checkpointed into {page_path}; "
            "opening with wal=False would silently discard them — reopen "
            "with wal=True (or run 'repro recover') to replay the log first"
        )


def load_database(
    page_path: str,
    pool_capacity: int = 4096,
    wal: bool = True,
    storage_wrap: Callable[[StorageBackend], StorageBackend] | None = None,
    wal_wrap: Callable[[WalFileLike], WalFileLike] | None = None,
) -> Database:
    """Reopen a snapshotted database from its page file + metadata + log.

    With ``wal=True`` (the default) an existing write-ahead log is
    recovered first: committed transactions landed after the snapshot are
    replayed (the newest committed catalog manifest supersedes the
    snapshot's), torn tails are discarded, and generation agreement
    between log and metadata is enforced.  With ``wal=False`` the open is
    refused while the log holds committed-but-uncheckpointed
    transactions (see :func:`_refuse_live_wal_tail`).  Every page is verified before
    any row is deserialized — against the snapshot checksums, or for
    log-resident pages against their record CRCs — and a mismatch raises
    :class:`PageCorruptionError` naming the offending page.  The verified
    checksums prime the reopened pool's ledger, so later physical
    re-reads stay verified.

    ``storage_wrap`` / ``wal_wrap`` interpose on the page backend and the
    log file respectively — the crash-simulation harness's injection
    points.
    """
    meta_file = _meta_path(page_path)
    if not os.path.exists(meta_file):
        raise DatabaseError(f"no snapshot metadata at {meta_file}")
    # The metadata file crosses a trust boundary (any process may have
    # scribbled on it), so every shape assumption is checked and every
    # violation is a typed DatabaseError — the fuzz harness's invariant.
    try:
        with open(meta_file, "rb") as handle:
            meta = json.loads(handle.read())
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise DatabaseError(
            f"snapshot metadata at {meta_file} is not valid JSON: {exc}"
        ) from exc
    except RecursionError as exc:
        # A pathologically nested document (fuzz finding): the stdlib
        # parser recurses per nesting level and blows the stack.
        raise DatabaseError(
            f"snapshot metadata at {meta_file} is nested too deeply"
        ) from exc
    if not isinstance(meta, dict):
        raise DatabaseError(
            f"snapshot metadata at {meta_file} must be a JSON object, "
            f"got {type(meta).__name__}"
        )
    if meta.get("version") not in _SUPPORTED_VERSIONS:
        raise DatabaseError(f"unsupported snapshot version {meta.get('version')!r}")
    generation_raw = meta.get("generation", 0)
    if not isinstance(generation_raw, int) or isinstance(generation_raw, bool):
        raise DatabaseError(
            f"snapshot generation must be an integer, got {generation_raw!r}"
        )
    generation = generation_raw

    if not wal:
        _refuse_live_wal_tail(page_path, generation)
    storage: StorageBackend = FileStorage(page_path)
    if storage_wrap is not None:
        storage = storage_wrap(storage)
    wal_storage: WalStorage | None = None
    effective: StorageBackend = storage
    if wal:
        try:
            wal_file: WalFileLike = WalFile(_wal_path(page_path))
        except DatabaseError:
            storage.close()
            raise
        if wal_wrap is not None:
            wal_file = wal_wrap(wal_file)
        try:
            wal_storage = WalStorage(storage, wal_file)
        except DatabaseError:
            # The recovery scan refused the log (bad magic/version);
            # neither handle reached an owner that would close it.
            wal_file.close()
            storage.close()
            raise
        if wal_storage.was_empty:
            wal_storage.reset(generation)
        elif wal_storage.generation == generation:
            pass  # live tail: the scan already replayed it
        elif generation == wal_storage.generation + 1:
            # The crash landed between the checkpoint's metadata write and
            # its log reset: every logged image is already in the page
            # file, so the tail is stale — discard it.
            wal_storage.reset(generation)
        else:
            wal_storage.close()
            raise DatabaseError(
                f"WAL generation {wal_storage.generation} does not match "
                f"snapshot generation {generation} for {page_path}"
            )
        effective = wal_storage

    checksums = meta.get("page_checksums")
    if checksums is not None and (
        not isinstance(checksums, list)
        or any(
            entry is not None
            and (not isinstance(entry, int) or isinstance(entry, bool))
            for entry in checksums
        )
    ):
        effective.close()
        raise DatabaseError(
            "snapshot page_checksums must be a list of integers or nulls"
        )
    ledger: dict[int, int] = {}
    if checksums is not None:
        if len(checksums) > effective.num_pages:
            effective.close()
            raise DatabaseError(
                f"snapshot metadata lists {len(checksums)} pages but "
                f"{page_path} holds {effective.num_pages}"
            )
        wal_pages = (
            frozenset(wal_storage.committed_pages()) if wal_storage is not None else frozenset()
        )
        for page_no in range(effective.num_pages):
            actual = page_checksum(effective.read(page_no))
            if page_no in wal_pages:
                # The newest image lives in the log; its record CRC was
                # verified during the recovery scan.  Ledger the actual.
                ledger[page_no] = actual
                continue
            if page_no >= len(checksums):
                # Pages past the snapshot's count are legitimate only as
                # log-resident allocations (handled above).
                effective.close()
                raise DatabaseError(
                    f"snapshot metadata lists {len(checksums)} pages but "
                    f"{page_path} holds {effective.num_pages}"
                )
            expected = checksums[page_no]
            if expected is None:
                ledger[page_no] = actual
                continue
            if actual != expected:
                effective.close()
                raise PageCorruptionError(
                    f"snapshot page {page_no} of {page_path} is corrupt "
                    f"(expected CRC {expected:#010x}, got {actual:#010x})",
                    page_no=page_no,
                )
            ledger[page_no] = expected

    if "relations" not in meta:
        effective.close()
        raise DatabaseError(f"snapshot metadata at {meta_file} lists no relations")
    pool = BufferPool(effective, capacity=pool_capacity)
    pool.prime_checksums(ledger)
    db = Database(pool)
    relations_meta = meta["relations"]
    if wal_storage is not None and wal_storage.recovered_catalog is not None:
        # Committed transactions landed after the snapshot; their catalog
        # manifest supersedes the snapshot's.  Its record CRC vouched for
        # the bytes, but the shape is still checked — typed, not KeyError.
        try:
            relations_meta = json.loads(
                wal_storage.recovered_catalog.decode("utf-8")
            )["relations"]
        except (
            UnicodeDecodeError,
            json.JSONDecodeError,
            KeyError,
            TypeError,
            RecursionError,
        ) as exc:
            effective.close()
            raise DatabaseError(
                f"recovered WAL catalog manifest for {page_path} is "
                f"malformed: {type(exc).__name__}: {exc}"
            ) from exc
    try:
        apply_catalog(db, relations_meta)
    except DatabaseError:
        effective.close()
        raise
    except (
        KeyError,
        TypeError,
        ValueError,
        AttributeError,
        IndexError,
        RecursionError,
    ) as exc:
        # apply_catalog trusts the manifest's shape; a mutated snapshot
        # must still fail typed, naming the file, not with a raw KeyError.
        effective.close()
        raise DatabaseError(
            f"snapshot catalog metadata at {meta_file} is malformed: "
            f"{type(exc).__name__}: {exc}"
        ) from exc
    return db
