"""Saving and reopening a database across processes.

§6.2.2.1: "Because we persist the ETI as a standard indexed relation, we
can use it for subsequent batches of input tuples if the reference table
does not change."  Page data already lives in the
:class:`~repro.db.pager.FileStorage` file; this module persists the missing
piece — the catalog metadata (schemas, heap page lists, index definitions)
— so a built reference relation + ETI can be reopened without rebuilding.

Indexes are re-created from heap scans on load.  That is a deliberate
trade: B+-tree node serialization would roughly double the engine for a
one-time linear cost at open (the ETI's clustered index bulk-rebuilds from
already-sorted heap order).

The metadata file is JSON, next to the page file by default.
"""

from __future__ import annotations

import json
import os

from repro.db.database import Database
from repro.db.errors import DatabaseError, PageCorruptionError
from repro.db.pager import BufferPool, FileStorage, page_checksum
from repro.db.types import Column, ColumnType

_FORMAT_VERSION = 2
# Version 1 snapshots (no page checksums) still load; they just cannot be
# verified.
_SUPPORTED_VERSIONS = (1, 2)


def _meta_path(page_path: str) -> str:
    return page_path + ".meta.json"


def save_database(db: Database, page_path: str | None = None) -> str:
    """Flush pages and write catalog metadata; returns the metadata path.

    ``page_path`` defaults to the path of the database's file storage; an
    in-memory database cannot be snapshotted (there is no page file to
    reopen).
    """
    storage = db.pool.storage
    if page_path is None:
        if not isinstance(storage, FileStorage):
            raise DatabaseError(
                "cannot snapshot an in-memory database; open it with "
                "Database.on_disk() first"
            )
        page_path = storage.path
    db.pool.flush()
    ledger = db.pool.page_checksums()
    checksums = [
        ledger.get(page_no)
        if ledger.get(page_no) is not None
        else page_checksum(storage.read(page_no))
        for page_no in range(storage.num_pages)
    ]
    meta = {
        "version": _FORMAT_VERSION,
        "page_checksums": checksums,
        "relations": [
            {
                "name": relation.name,
                "columns": [
                    [c.name, c.type.value, c.nullable]
                    for c in relation.schema.columns
                ],
                "page_numbers": list(relation.heap._page_numbers),
                "record_count": len(relation),
                "indexes": [
                    {
                        "name": spec.name,
                        "columns": [
                            relation.schema.columns[p].name for p in spec.positions
                        ],
                        "unique": spec.unique,
                    }
                    for spec in relation._indexes.values()
                ],
            }
            for relation in (db.relation(name) for name in db.relation_names())
        ],
    }
    path = _meta_path(page_path)
    with open(path, "w") as handle:
        json.dump(meta, handle)
    return path


def load_database(page_path: str, pool_capacity: int = 4096) -> Database:
    """Reopen a snapshotted database from its page file + metadata.

    Version-2 snapshots carry per-page CRC32 checksums; every page is
    verified before any row is deserialized, and a mismatch raises
    :class:`PageCorruptionError` naming the offending page.  The verified
    checksums also prime the reopened pool's ledger, so later physical
    re-reads of those pages stay verified.
    """
    meta_file = _meta_path(page_path)
    if not os.path.exists(meta_file):
        raise DatabaseError(f"no snapshot metadata at {meta_file}")
    with open(meta_file) as handle:
        meta = json.load(handle)
    if meta.get("version") not in _SUPPORTED_VERSIONS:
        raise DatabaseError(f"unsupported snapshot version {meta.get('version')!r}")

    storage = FileStorage(page_path)
    checksums = meta.get("page_checksums")
    ledger: dict[int, int] = {}
    if checksums is not None:
        if len(checksums) != storage.num_pages:
            storage.close()
            raise DatabaseError(
                f"snapshot metadata lists {len(checksums)} pages but "
                f"{page_path} holds {storage.num_pages}"
            )
        for page_no, expected in enumerate(checksums):
            if expected is None:
                continue
            actual = page_checksum(storage.read(page_no))
            if actual != expected:
                storage.close()
                raise PageCorruptionError(
                    f"snapshot page {page_no} of {page_path} is corrupt "
                    f"(expected CRC {expected:#010x}, got {actual:#010x})",
                    page_no=page_no,
                )
            ledger[page_no] = expected

    pool = BufferPool(storage, capacity=pool_capacity)
    pool.prime_checksums(ledger)
    db = Database(pool)
    for relation_meta in meta["relations"]:
        columns = [
            Column(name, ColumnType(type_value), nullable)
            for name, type_value, nullable in relation_meta["columns"]
        ]
        relation = db.create_relation(relation_meta["name"], columns)
        relation.heap._page_numbers = list(relation_meta["page_numbers"])
        relation.heap._record_count = relation_meta["record_count"]
        for index_meta in relation_meta["indexes"]:
            relation.create_index(
                index_meta["name"], index_meta["columns"], unique=index_meta["unique"]
            )
    return db
