"""Exception hierarchy for the embedded storage engine."""


class DatabaseError(Exception):
    """Base class for all storage-engine errors."""


class SchemaError(DatabaseError):
    """A row or value does not conform to a relation's schema."""


class PageFullError(DatabaseError):
    """A record does not fit into the target page."""


class RecordNotFoundError(DatabaseError):
    """A record id or key does not resolve to a stored record."""


class DuplicateKeyError(DatabaseError):
    """A unique index rejected an insert with an existing key."""


class RelationError(DatabaseError):
    """Catalog-level problem: unknown or duplicate relation, bad index."""


class SortOrderError(DatabaseError, ValueError):
    """Rows arrived out of the sort order an operation requires.

    Raised by order-dependent operations (B+-tree bulk load, sorted-input
    aggregation) when their input breaks the ordering contract.  Also a
    ``ValueError`` because out-of-order input is a caller bug, not a
    storage failure — callers that validate arguments keep working.
    """


class BufferPoolError(DatabaseError):
    """The buffer pool could not satisfy a pin request."""


class TransientIOError(DatabaseError):
    """A storage operation failed in a way that may succeed on retry.

    Raised by flaky storage backends (and the test fault injector); the
    buffer pool's retry policy absorbs these up to its attempt budget.
    """


class RetryExhaustedError(BufferPoolError):
    """A transient fault persisted through every configured retry."""

    def __init__(self, message: str, page_no: int | None = None) -> None:
        super().__init__(message)
        self.page_no = page_no


class WalError(DatabaseError):
    """The write-ahead log is structurally unusable or misused.

    Raised for a damaged log header, a generation that matches neither
    the snapshot manifest nor its predecessor, or protocol misuse
    (nested explicit transactions, checkpointing mid-transaction).  A
    *torn tail* is never an error — recovery truncates it silently.
    """


class CrashError(DatabaseError):
    """A simulated process death from the crash-point test harness.

    Deliberately not a :class:`TransientIOError`: retries must not absorb
    a crash, exactly as a real process death cannot be retried away.
    """


class PageCorruptionError(DatabaseError):
    """A page's bytes do not match its recorded CRC32 checksum.

    Corruption is never retried away silently: the pool re-reads once to
    rule out a transient bus/bit error, then fails loudly with the page
    number so the operator knows exactly what is damaged.
    """

    def __init__(self, message: str, page_no: int | None = None) -> None:
        super().__init__(message)
        self.page_no = page_no
