"""Exception hierarchy for the embedded storage engine."""


class DatabaseError(Exception):
    """Base class for all storage-engine errors."""


class SchemaError(DatabaseError):
    """A row or value does not conform to a relation's schema."""


class PageFullError(DatabaseError):
    """A record does not fit into the target page."""


class RecordNotFoundError(DatabaseError):
    """A record id or key does not resolve to a stored record."""


class DuplicateKeyError(DatabaseError):
    """A unique index rejected an insert with an existing key."""


class RelationError(DatabaseError):
    """Catalog-level problem: unknown or duplicate relation, bad index."""


class BufferPoolError(DatabaseError):
    """The buffer pool could not satisfy a pin request."""
