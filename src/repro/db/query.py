"""Iterator-style relational operators.

Just enough of a query engine to express the paper's ETI-query —
``SELECT ... FROM pre_eti ORDER BY QGram, Coordinate, Column, Tid`` followed
by grouping — plus the scans and lookups the match algorithms issue.

Operators compose as plain Python iterators, mirroring the Volcano model:

    >>> plan = GroupAggregate(
    ...     Sort(SeqScan(pre_eti), key_columns=("qgram", "coord", "column", "tid")),
    ...     group_columns=("qgram", "coord", "column"),
    ... )
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.db.errors import SortOrderError
from repro.db.exsort import SortStats, external_sort
from repro.db.relation import Relation
from repro.db.types import Row


class Operator:
    """Base class; subclasses implement ``__iter__`` and ``columns``."""

    @property
    def columns(self) -> tuple[str, ...]:
        raise NotImplementedError

    def __iter__(self) -> Iterator[Row]:
        raise NotImplementedError


class SeqScan(Operator):
    """Full scan of a relation in heap order."""

    def __init__(self, relation: Relation) -> None:
        self.relation = relation

    @property
    def columns(self) -> tuple[str, ...]:
        return self.relation.schema.names

    def __iter__(self) -> Iterator[Row]:
        return self.relation.scan()


class IndexScan(Operator):
    """Key-ordered scan of an index range ``[lo, hi)``.

    The ETI's clustered index makes this the access path for prefix
    queries like "all coordinates of one q-gram".
    """

    def __init__(
        self, relation: Relation, index_name: str, lo: Any = None, hi: Any = None
    ) -> None:
        self.relation = relation
        self.index_name = index_name
        self.lo = lo
        self.hi = hi

    @property
    def columns(self) -> tuple[str, ...]:
        return self.relation.schema.names

    def __iter__(self) -> Iterator[Row]:
        for _, row in self.relation.index_range(self.index_name, self.lo, self.hi):
            yield row


class Filter(Operator):
    """Rows of ``child`` satisfying ``predicate``."""

    def __init__(self, child: Operator, predicate: Callable[[Row], bool]) -> None:
        self.child = child
        self.predicate = predicate

    @property
    def columns(self) -> tuple[str, ...]:
        return self.child.columns

    def __iter__(self) -> Iterator[Row]:
        return (row for row in self.child if self.predicate(row))


class Project(Operator):
    """Column projection (by name)."""

    def __init__(self, child: Operator, output_columns: Sequence[str]) -> None:
        self.child = child
        self._output = tuple(output_columns)
        child_cols = child.columns
        self._positions = tuple(child_cols.index(c) for c in self._output)

    @property
    def columns(self) -> tuple[str, ...]:
        return self._output

    def __iter__(self) -> Iterator[Row]:
        positions = self._positions
        for row in self.child:
            yield tuple(row[p] for p in positions)


class Sort(Operator):
    """External sort of ``child`` on ``key_columns`` (ascending)."""

    def __init__(
        self,
        child: Operator,
        key_columns: Sequence[str],
        memory_limit: int = 100_000,
        stats: SortStats | None = None,
    ) -> None:
        self.child = child
        self.key_columns = tuple(key_columns)
        self.memory_limit = memory_limit
        self.stats = stats if stats is not None else SortStats()
        child_cols = child.columns
        self._positions = tuple(child_cols.index(c) for c in self.key_columns)

    @property
    def columns(self) -> tuple[str, ...]:
        return self.child.columns

    def __iter__(self) -> Iterator[Row]:
        positions = self._positions
        return external_sort(
            iter(self.child),
            key=lambda row: tuple(row[p] for p in positions),
            memory_limit=self.memory_limit,
            stats=self.stats,
        )


class GroupAggregate(Operator):
    """Group *sorted* input on ``group_columns``.

    Emits one row per group: the group key values followed by the result of
    each aggregate.  An aggregate is ``(name, fn)`` where ``fn`` receives the
    list of rows in the group.  Input must already be sorted on the group
    columns (as the ETI-query guarantees); an out-of-order group raises.
    """

    def __init__(
        self,
        child: Operator,
        group_columns: Sequence[str],
        aggregates: Sequence[tuple[str, Callable[[list[Row]], Any]]],
    ) -> None:
        self.child = child
        self.group_columns = tuple(group_columns)
        self.aggregates = tuple(aggregates)
        child_cols = child.columns
        self._positions = tuple(child_cols.index(c) for c in self.group_columns)

    @property
    def columns(self) -> tuple[str, ...]:
        return self.group_columns + tuple(name for name, _ in self.aggregates)

    def __iter__(self) -> Iterator[Row]:
        positions = self._positions
        current_key: Any = None
        group: list[Row] = []
        last_emitted: Any = None
        for row in self.child:
            key = tuple(row[p] for p in positions)
            if group and key != current_key:
                if last_emitted is not None and current_key < last_emitted:
                    raise SortOrderError("GroupAggregate input is not sorted")
                yield self._emit(current_key, group)
                last_emitted = current_key
                group = []
            if last_emitted is not None and key < last_emitted:
                raise SortOrderError("GroupAggregate input is not sorted")
            current_key = key
            group.append(row)
        if group:
            yield self._emit(current_key, group)

    def _emit(self, key: tuple, group: list[Row]) -> Row:
        return key + tuple(fn(group) for _, fn in self.aggregates)


class Limit(Operator):
    """First ``n`` rows of ``child``."""

    def __init__(self, child: Operator, n: int) -> None:
        if n < 0:
            raise ValueError("limit must be non-negative")
        self.child = child
        self.n = n

    @property
    def columns(self) -> tuple[str, ...]:
        return self.child.columns

    def __iter__(self) -> Iterator[Row]:
        count = 0
        for row in self.child:
            if count >= self.n:
                return
            yield row
            count += 1


class MemorySource(Operator):
    """Adapter exposing an in-memory row list as an operator (for tests)."""

    def __init__(self, column_names: Sequence[str], rows: Iterable[Row]) -> None:
        self._columns = tuple(column_names)
        self._rows = list(rows)

    @property
    def columns(self) -> tuple[str, ...]:
        return self._columns

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)
