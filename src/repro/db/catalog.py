"""Catalog manifests: the serializable shape of a database's relations.

The storage engine keeps its catalog (schemas, heap page directories,
index definitions) in memory; everything below the catalog is plain
pages.  Persisting a database therefore means persisting this manifest —
the snapshot writer embeds it in ``*.meta.json`` and every WAL
transaction commit carries a copy, so crash recovery can reconstruct
relations whose heaps grew or shrank after the last snapshot.

Indexes are re-created from heap scans on load: B+-tree node
serialization would roughly double the engine for a one-time linear cost
at open (the ETI's clustered index bulk-rebuilds from already-sorted
heap order).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.db.types import Column, ColumnType

if TYPE_CHECKING:
    from repro.db.database import Database


def encode_catalog(db: "Database") -> list[dict[str, Any]]:
    """The manifest of every relation in ``db``, in creation order."""
    return [
        {
            "name": relation.name,
            "columns": [
                [c.name, c.type.value, c.nullable] for c in relation.schema.columns
            ],
            "page_numbers": list(relation.heap._page_numbers),
            "record_count": len(relation),
            "indexes": [
                {
                    "name": spec.name,
                    "columns": [
                        relation.schema.columns[p].name for p in spec.positions
                    ],
                    "unique": spec.unique,
                }
                for spec in relation._indexes.values()
            ],
        }
        for relation in (db.relation(name) for name in db.relation_names())
    ]


def apply_catalog(db: "Database", relations_meta: list[dict[str, Any]]) -> None:
    """Recreate relations and indexes in ``db`` from a manifest.

    The page data must already be readable through the database's buffer
    pool (from the page file, or merged with a recovered WAL tail) —
    index creation scans the heaps it describes.
    """
    for relation_meta in relations_meta:
        columns = [
            Column(name, ColumnType(type_value), nullable)
            for name, type_value, nullable in relation_meta["columns"]
        ]
        relation = db.create_relation(relation_meta["name"], columns)
        relation.heap._page_numbers = list(relation_meta["page_numbers"])
        relation.heap._record_count = relation_meta["record_count"]
        for index_meta in relation_meta["indexes"]:
            relation.create_index(
                index_meta["name"], index_meta["columns"], unique=index_meta["unique"]
            )
