"""Write-ahead logging: crash-safe durability for the page store.

The paper's setting is an *online* operation over a persisted ETI
(§6.2.2.1): the index is "a standard indexed relation" that outlives the
process serving queries.  PR 2 made reads resilient; this module makes
writes survivable.  The protocol is the classic redo-only, page-image WAL
(the shape SQLite's WAL mode and ARIES' redo pass share):

- Every page write is appended to an auxiliary log file as a full
  after-image inside a ``BEGIN … PAGE … COMMIT`` record group; the main
  page file is *never* written on the mutation path.
- ``COMMIT`` carries an optional payload (the catalog manifest, so a
  recovered database knows its relations) and is followed by ``fsync`` —
  the durability point.
- A *checkpoint* copies the latest committed image of every logged page
  into the main page file, fsyncs it, and truncates the log.  Crashing
  anywhere inside a checkpoint is safe: the log still holds the images
  and replay is idempotent.
- On open, the log is scanned front to back; every record's CRC32 is
  verified, complete ``BEGIN … COMMIT`` groups are replayed (into an
  in-memory page index — reads merge log tail over page file), and a
  torn tail (short or CRC-corrupt record, or a group missing its
  ``COMMIT``) is discarded by truncating the file.

Log record format (all little-endian)::

    header:  [magic "REPROWAL"][version: u32][generation: u64]
    record:  [type: u8][txn: u64][payload_len: u32][payload][crc32: u32]
    PAGE payload:   [page_no: u64][page bytes]
    COMMIT payload: opaque bytes (catalog manifest JSON), may be empty
    BEGIN payload:  empty

The ``generation`` ties the log to its snapshot manifest: a checkpoint
bumps both in lock-step, so :func:`~repro.db.snapshot.load_database` can
tell a live tail (replay it) from a stale pre-checkpoint log (discard it)
from a foreign one (refuse).

Thread-safety: :class:`WalStorage` is *not* internally locked — every
call arrives under the owning :class:`~repro.db.pager.BufferPool` lock
(physical I/O is already serialized there), which also orders log appends
against concurrent readers.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Protocol

from repro.db.errors import BufferPoolError, WalError
from repro.db.page import PAGE_SIZE

if TYPE_CHECKING:
    from repro.db.pager import StorageBackend

WAL_MAGIC = b"REPROWAL"
WAL_VERSION = 1

_HEADER = struct.Struct("<8sIQ")  # magic, version, generation
_RECORD = struct.Struct("<BQI")  # type, txn id, payload length
_CRC = struct.Struct("<I")
_PAGE_NO = struct.Struct("<Q")

HEADER_SIZE = _HEADER.size

REC_BEGIN = 1
REC_PAGE = 2
REC_COMMIT = 3

def _record_crc(kind: int, txn: int, payload: bytes) -> int:
    """CRC32 over a record's header fields and payload."""
    crc = zlib.crc32(_RECORD.pack(kind, txn, len(payload)))
    return zlib.crc32(payload, crc) & 0xFFFFFFFF


class WalFileLike(Protocol):
    """Byte-level log file interface (real file or a fault wrapper)."""

    @property
    def size(self) -> int:
        """Current logical size of the log in bytes."""
        ...

    def append(self, data: bytes) -> int:
        """Append ``data`` at the end; return the offset it was written at."""
        ...

    def pread(self, offset: int, length: int) -> bytes:
        """Read ``length`` bytes at ``offset`` (short reads allowed at EOF)."""
        ...

    def sync(self) -> None:
        """Flush appended bytes to stable storage (fsync)."""
        ...

    def truncate(self, size: int) -> None:
        """Cut the file down to ``size`` bytes."""
        ...

    def close(self) -> None:
        """Release the underlying file resources."""
        ...


class WalFile:
    """The real append-oriented log file on disk."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._fd = os.open(path, os.O_RDWR | os.O_CREAT, 0o644)
        self._size = os.fstat(self._fd).st_size

    @property
    def size(self) -> int:
        """Current logical size of the log in bytes."""
        return self._size

    def append(self, data: bytes) -> int:
        """Append ``data`` at the end; return the offset it was written at.

        ``os.pwrite`` may write fewer bytes than asked; looping until the
        whole record lands keeps ``_size`` honest — advancing it past a
        short write would leave a gap that commit() then reports durable.
        """
        offset = self._size
        view = memoryview(data)
        written = 0
        while written < len(data):
            n = os.pwrite(self._fd, view[written:], offset + written)
            if n <= 0:
                raise WalError(
                    f"short write appending {len(data)} bytes to {self.path} "
                    f"at offset {offset} ({written} written)"
                )
            written += n
        self._size += len(data)
        return offset

    def pread(self, offset: int, length: int) -> bytes:
        """Read ``length`` bytes at ``offset`` (short reads allowed at EOF)."""
        return os.pread(self._fd, length, offset)

    def sync(self) -> None:
        """fsync the log file."""
        os.fsync(self._fd)

    def truncate(self, size: int) -> None:
        """Cut the file down to ``size`` bytes."""
        os.ftruncate(self._fd, size)
        self._size = size

    def close(self) -> None:
        """Close the log's file descriptor."""
        if self._fd >= 0:
            os.close(self._fd)
            self._fd = -1


@dataclass
class WalStats:
    """Operation counters for one :class:`WalStorage` lifetime."""

    appends: int = 0
    page_images: int = 0
    commits: int = 0
    syncs: int = 0
    wal_reads: int = 0
    checkpoints: int = 0


@dataclass
class RecoveryInfo:
    """What the open-time scan of an existing log found and did."""

    committed_txns: int = 0
    replayed_pages: int = 0
    torn_bytes: int = 0
    generation: int = 0
    catalog_recovered: bool = False


@dataclass
class _Scan:
    """Raw result of one front-to-back log scan."""

    generation: int = 0
    valid_end: int = HEADER_SIZE
    committed: dict[int, int] = field(default_factory=dict)
    committed_txns: int = 0
    max_page_no: int = -1
    catalog: bytes | None = None
    was_empty: bool = False


def scan_wal(wal_file: WalFileLike) -> _Scan:
    """Scan a log: verify records, collect committed state, find the torn tail.

    Returns the scan result; never raises on a torn/corrupt *tail* (the
    ``valid_end`` marks where the good prefix ends), but a damaged header
    raises :class:`WalError` — that is not recoverable tearing, it is the
    wrong file.
    """
    result = _Scan()
    if wal_file.size < HEADER_SIZE:
        # Genuinely empty, or a header torn by a crash inside a reset —
        # headers are only (re)written when the log is logically empty,
        # so either way it holds nothing recoverable.
        result.was_empty = True
        return result
    header = wal_file.pread(0, HEADER_SIZE)
    magic, version, generation = _HEADER.unpack(header)
    if magic != WAL_MAGIC:
        raise WalError(f"bad WAL magic {magic!r} (expected {WAL_MAGIC!r})")
    if version != WAL_VERSION:
        raise WalError(f"unsupported WAL version {version}")
    result.generation = generation

    offset = HEADER_SIZE
    pending: dict[int, int] | None = None
    pending_txn = 0
    pending_max_page = -1
    while True:
        head = wal_file.pread(offset, _RECORD.size)
        if len(head) < _RECORD.size:
            break  # clean EOF or a torn record header
        kind, txn, length = _RECORD.unpack(head)
        if kind not in (REC_BEGIN, REC_PAGE, REC_COMMIT):
            break  # garbage — treat as torn tail
        if offset + _RECORD.size + length + _CRC.size > wal_file.size:
            # The record claims to run past EOF: either a torn append or a
            # corrupt length field.  No payload-size heuristic beyond this —
            # COMMIT payloads (catalog manifests) grow with the catalog, and
            # the length field is already covered by the record CRC.
            break
        body = wal_file.pread(offset + _RECORD.size, length + _CRC.size)
        if len(body) < length + _CRC.size:
            break  # payload or CRC torn off
        payload, crc_bytes = body[:length], body[length:]
        if _CRC.unpack(crc_bytes)[0] != _record_crc(kind, txn, payload):
            break  # corrupt record
        if kind == REC_BEGIN:
            pending = {}
            pending_txn = txn
            pending_max_page = -1
        elif kind == REC_PAGE:
            if pending is None or txn != pending_txn:
                break  # page image outside its transaction frame
            if length != _PAGE_NO.size + PAGE_SIZE:
                break
            page_no = _PAGE_NO.unpack_from(payload)[0]
            pending[page_no] = offset + _RECORD.size + _PAGE_NO.size
            pending_max_page = max(pending_max_page, page_no)
        else:  # REC_COMMIT
            if pending is None or txn != pending_txn:
                break
            result.committed.update(pending)
            result.committed_txns += 1
            result.max_page_no = max(result.max_page_no, pending_max_page)
            if payload:
                result.catalog = payload
            pending = None
            result.valid_end = offset + _RECORD.size + length + _CRC.size
        offset += _RECORD.size + length + _CRC.size
    return result


class WalStorage:
    """A write-ahead-logged view over a page storage backend.

    Implements the :class:`~repro.db.pager.StorageBackend` protocol.
    Writes append page images to the log; reads merge the committed log
    tail over the inner backend; :meth:`commit` is the durability point;
    checkpointing (:meth:`apply_committed` + :meth:`reset`) migrates the
    tail into the inner backend and empties the log.

    On construction the existing log is scanned: committed transactions
    are replayed (their page images become readable), a torn tail is
    truncated away, and :attr:`recovery` reports what happened.
    """

    def __init__(
        self,
        inner: "StorageBackend",
        wal_file: WalFileLike,
        sync_on_commit: bool = True,
    ) -> None:
        self.inner = inner
        self.wal_file = wal_file
        self.sync_on_commit = sync_on_commit
        self.stats = WalStats()
        scan = scan_wal(wal_file)
        self.was_empty = scan.was_empty
        self._generation = scan.generation
        self._committed: dict[int, int] = dict(scan.committed)
        self._committed_num_pages = max(inner.num_pages, scan.max_page_no + 1)
        self._catalog = scan.catalog
        torn = wal_file.size - scan.valid_end if not scan.was_empty else 0
        if scan.was_empty:
            self._write_header()
        elif torn > 0:
            wal_file.truncate(scan.valid_end)
        self.recovery = RecoveryInfo(
            committed_txns=scan.committed_txns,
            replayed_pages=len(scan.committed),
            torn_bytes=max(torn, 0),
            generation=self._generation,
            catalog_recovered=scan.catalog is not None,
        )
        self._txn: dict[int, int] | None = None
        self._txn_id = scan.committed_txns
        self._txn_num_pages = self._committed_num_pages
        self._explicit = False

    # ------------------------------------------------------------------
    # StorageBackend protocol
    # ------------------------------------------------------------------

    @property
    def num_pages(self) -> int:
        """Pages visible through this backend (committed + staged allocs)."""
        return max(self._committed_num_pages, self._txn_num_pages)

    def allocate(self) -> int:
        """Stage a zeroed page in the current transaction; return its number.

        The inner backend is *not* extended here — that happens at
        checkpoint, so a crash cannot leave the page file longer than the
        committed state it represents.
        """
        page_no = self.num_pages
        self._txn_num_pages = max(self._txn_num_pages, page_no + 1)
        self.write(page_no, bytes(PAGE_SIZE))
        return page_no

    def read(self, page_no: int) -> bytes:
        """Read the newest visible image: txn staging, log tail, then inner."""
        if self._txn is not None:
            offset = self._txn.get(page_no)
            if offset is not None:
                self.stats.wal_reads += 1
                return self.wal_file.pread(offset, PAGE_SIZE)
        offset = self._committed.get(page_no)
        if offset is not None:
            self.stats.wal_reads += 1
            return self.wal_file.pread(offset, PAGE_SIZE)
        if page_no >= self.inner.num_pages:
            raise BufferPoolError(
                f"page {page_no} out of range (storage has {self.num_pages})"
            )
        return self.inner.read(page_no)

    def write(self, page_no: int, data: bytes) -> None:
        """Append a page after-image to the log inside the open transaction."""
        if len(data) != PAGE_SIZE:
            raise BufferPoolError("page write with wrong size")
        if not 0 <= page_no < self.num_pages:
            raise BufferPoolError(
                f"page {page_no} out of range (storage has {self.num_pages})"
            )
        self._ensure_txn()
        assert self._txn is not None
        offset = self._append(REC_PAGE, _PAGE_NO.pack(page_no) + data)
        self._txn[page_no] = offset + _RECORD.size + _PAGE_NO.size
        self.stats.page_images += 1

    def sync(self) -> None:
        """fsync the log file (the inner backend syncs at checkpoint)."""
        self.wal_file.sync()
        self.stats.syncs += 1

    def close(self) -> None:
        """Close the log file and the inner backend."""
        self.wal_file.close()
        self.inner.close()

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------

    @property
    def generation(self) -> int:
        """The checkpoint generation stamped in the log header."""
        return self._generation

    @property
    def tail_pages(self) -> int:
        """Committed pages whose newest image still lives in the log tail."""
        return len(self._committed)

    @property
    def in_transaction(self) -> bool:
        """True while an explicit transaction is open."""
        return self._explicit

    @property
    def recovered_catalog(self) -> bytes | None:
        """The newest committed catalog manifest, if any transaction logged one."""
        return self._catalog

    def committed_pages(self) -> tuple[int, ...]:
        """Page numbers whose newest committed image lives in the log tail."""
        return tuple(self._committed)

    def begin(self) -> None:
        """Open an explicit transaction (flushes any implicit one first)."""
        if self._explicit:
            raise WalError("a WAL transaction is already open")
        if self._txn is not None:
            self.commit()
        self._explicit = True

    def commit(self, payload: bytes | None = None) -> None:
        """Durably commit the open transaction (no-op when nothing is staged).

        ``payload`` rides on the COMMIT record — the catalog manifest that
        lets recovery reconstruct relations mutated by this transaction.
        """
        if self._txn is None and payload is None:
            self._explicit = False
            return
        self._ensure_txn()
        assert self._txn is not None
        self._append(REC_COMMIT, payload if payload is not None else b"")
        if self.sync_on_commit:
            self.sync()
        self._committed.update(self._txn)
        self._committed_num_pages = max(
            self._committed_num_pages, self._txn_num_pages
        )
        if payload is not None:
            self._catalog = payload
        self._txn = None
        self._explicit = False
        self.stats.commits += 1

    def flush_barrier(self) -> None:
        """Commit the implicit transaction, if one is open.

        Called by :meth:`~repro.db.pager.BufferPool.flush` so a flush is
        an atomic durability point; inside an explicit transaction this is
        a no-op (the explicit commit is the barrier).
        """
        if not self._explicit:
            self.commit()

    def abort(self) -> set[int]:
        """Discard the open transaction's staged pages; return their numbers.

        The staged records become dead bytes in the log (the next BEGIN
        supersedes them; recovery ignores commit-less groups).  Note this
        rolls back *storage* only — in-memory structures built over the
        aborted pages (heap directories, B+-trees) are the caller's
        problem; the safe move after an aborted transaction is to reopen
        the database.
        """
        touched = set(self._txn) if self._txn is not None else set()
        self._txn = None
        self._txn_num_pages = self._committed_num_pages
        self._explicit = False
        return touched

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def apply_committed(self) -> int:
        """Copy every committed log image into the inner backend and fsync it.

        Returns the number of pages applied.  Idempotent: crashing midway
        leaves the log intact, so the next recovery replays the same
        images.  The log itself is emptied separately by :meth:`reset`,
        *after* the caller has persisted whatever manifest ties the new
        page-file state together.
        """
        if self._explicit:
            raise WalError("cannot checkpoint inside an open transaction")
        self.flush_barrier()
        applied = 0
        for page_no in sorted(self._committed):
            while self.inner.num_pages <= page_no:
                self.inner.allocate()
            self.inner.write(page_no, self.wal_file.pread(self._committed[page_no], PAGE_SIZE))
            applied += 1
        if applied:
            self.inner.sync()
        self.stats.checkpoints += 1
        return applied

    def reset(self, generation: int) -> None:
        """Empty the log and stamp a new generation (the checkpoint epoch).

        Discards the committed-tail index — callers must have applied it
        first (:meth:`apply_committed`) or must intend to discard it (a
        stale pre-checkpoint log detected at load time).
        """
        if self._explicit:
            raise WalError("cannot reset the WAL inside an open transaction")
        self._txn = None
        self._committed.clear()
        self._catalog = None
        self._generation = generation
        self._committed_num_pages = self.inner.num_pages
        self._txn_num_pages = self._committed_num_pages
        self.wal_file.truncate(0)
        self._write_header()
        self.wal_file.sync()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _write_header(self) -> None:
        self.wal_file.truncate(0)
        self.wal_file.append(_HEADER.pack(WAL_MAGIC, WAL_VERSION, self._generation))

    def _ensure_txn(self) -> None:
        if self._txn is None:
            self._txn_id += 1
            self._append(REC_BEGIN, b"")
            self._txn = {}

    def _append(self, kind: int, payload: bytes) -> int:
        record = (
            _RECORD.pack(kind, self._txn_id, len(payload))
            + payload
            + _CRC.pack(_record_crc(kind, self._txn_id, payload))
        )
        offset = self.wal_file.append(record)
        self.stats.appends += 1
        return offset
