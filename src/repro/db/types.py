"""Schemas, column types, and the binary row codec.

Rows are plain Python tuples in memory.  When a row is stored in a heap page
it is encoded to bytes with a compact, self-describing format so that pages
hold real serialized records (and page-level space accounting is honest).

Supported column types:

- ``STR``: UTF-8 string with a varint length prefix.  ``None`` is encoded as
  a distinct marker so nullable text columns round-trip exactly.
- ``INT``: signed 64-bit integer (zig-zag varint).
- ``INT_LIST``: a list of non-negative integers — used for the ETI's
  ``Tid-list`` column.  ``None`` (the paper's stop-q-gram marker) is encoded
  distinctly from the empty list.
- ``FLOAT``: IEEE-754 double.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from repro.db.errors import SchemaError

Row = tuple

_NULL_MARKER = 0xFFFFFFFF


class ColumnType(enum.Enum):
    """Storage type of a relation column."""

    STR = "str"
    INT = "int"
    INT_LIST = "int_list"
    FLOAT = "float"


@dataclass(frozen=True)
class Column:
    """A named, typed column.

    ``nullable`` columns accept ``None``; the ETI's Tid-list column is
    nullable because stop q-grams store NULL tid-lists (Section 4.2).
    """

    name: str
    type: ColumnType
    nullable: bool = False


@dataclass(frozen=True)
class Schema:
    """An ordered list of columns; validates and encodes rows."""

    columns: tuple[Column, ...]
    _index: dict[str, int] = field(init=False, repr=False, compare=False, hash=False)

    def __init__(self, columns: Iterable[Column]) -> None:
        object.__setattr__(self, "columns", tuple(columns))
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate column names in {names}")
        object.__setattr__(
            self, "_index", {c.name: i for i, c in enumerate(self.columns)}
        )

    def __len__(self) -> int:
        return len(self.columns)

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self.columns)

    def position(self, name: str) -> int:
        """Return the ordinal position of column ``name``."""
        try:
            return self._index[name]
        except KeyError:
            raise SchemaError(f"no column named {name!r}") from None

    def validate(self, row: Sequence[Any]) -> Row:
        """Check ``row`` against the schema and return it as a tuple."""
        if len(row) != len(self.columns):
            raise SchemaError(
                f"row has {len(row)} values, schema has {len(self.columns)} columns"
            )
        for value, column in zip(row, self.columns):
            if value is None:
                if not column.nullable:
                    raise SchemaError(f"column {column.name!r} is not nullable")
                continue
            if column.type is ColumnType.STR and not isinstance(value, str):
                raise SchemaError(f"column {column.name!r} expects str, got {value!r}")
            if column.type is ColumnType.INT and not isinstance(value, int):
                raise SchemaError(f"column {column.name!r} expects int, got {value!r}")
            if column.type is ColumnType.FLOAT and not isinstance(value, (int, float)):
                raise SchemaError(
                    f"column {column.name!r} expects float, got {value!r}"
                )
            if column.type is ColumnType.INT_LIST:
                if not isinstance(value, (list, tuple)) or not all(
                    isinstance(v, int) and v >= 0 for v in value
                ):
                    raise SchemaError(
                        f"column {column.name!r} expects a list of non-negative "
                        f"ints, got {value!r}"
                    )
        return tuple(row)

    def encode(self, row: Sequence[Any]) -> bytes:
        """Serialize a validated row to bytes."""
        row = self.validate(row)
        parts: list[bytes] = []
        for value, column in zip(row, self.columns):
            parts.append(_encode_value(value, column.type))
        return b"".join(parts)

    def decode(self, data: bytes) -> Row:
        """Deserialize bytes produced by :meth:`encode` back to a row."""
        values: list[Any] = []
        offset = 0
        for column in self.columns:
            value, offset = _decode_value(data, offset, column.type)
            values.append(value)
        if offset != len(data):
            raise SchemaError(
                f"trailing bytes while decoding row ({len(data) - offset} left)"
            )
        return tuple(values)


def _encode_varint(value: int) -> bytes:
    """Unsigned LEB128 varint."""
    if value < 0:
        raise SchemaError("varint encodes non-negative integers only")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def _decode_varint(data: bytes, offset: int) -> tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise SchemaError("truncated varint")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7


def _zigzag(value: int) -> int:
    return (value << 1) ^ (value >> 63) if value < 0 else value << 1


def _unzigzag(value: int) -> int:
    return (value >> 1) ^ -(value & 1)


def _encode_value(value: Any, ctype: ColumnType) -> bytes:
    if value is None:
        # A length prefix of _NULL_MARKER flags NULL for every type.
        return _encode_varint(_NULL_MARKER)
    if ctype is ColumnType.STR:
        raw = value.encode("utf-8")
        return _encode_varint(len(raw)) + raw
    if ctype is ColumnType.INT:
        return _encode_varint(0) + _encode_varint(_zigzag(value))
    if ctype is ColumnType.FLOAT:
        return _encode_varint(0) + struct.pack("<d", float(value))
    if ctype is ColumnType.INT_LIST:
        if len(value) >= _NULL_MARKER:
            raise SchemaError("int list too long to encode")
        parts = [_encode_varint(len(value))]
        parts.extend(_encode_varint(v) for v in value)
        return b"".join(parts)
    raise SchemaError(f"unknown column type {ctype}")


def _decode_value(data: bytes, offset: int, ctype: ColumnType) -> tuple[Any, int]:
    prefix, offset = _decode_varint(data, offset)
    if prefix == _NULL_MARKER:
        return None, offset
    if ctype is ColumnType.STR:
        end = offset + prefix
        if end > len(data):
            raise SchemaError("truncated string value")
        return data[offset:end].decode("utf-8"), end
    if ctype is ColumnType.INT:
        raw, offset = _decode_varint(data, offset)
        return _unzigzag(raw), offset
    if ctype is ColumnType.FLOAT:
        end = offset + 8
        if end > len(data):
            raise SchemaError("truncated float value")
        return struct.unpack("<d", data[offset:end])[0], end
    if ctype is ColumnType.INT_LIST:
        values = []
        for _ in range(prefix):
            v, offset = _decode_varint(data, offset)
            values.append(v)
        return values, offset
    raise SchemaError(f"unknown column type {ctype}")
