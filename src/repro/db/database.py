"""The database facade: a catalog of relations over one buffer pool.

Plays the role of the operational data warehouse in the paper: the reference
relation, the pre-ETI, and the ETI all live here as standard relations.
"""

from __future__ import annotations

from typing import Iterable

from repro.db.errors import RelationError
from repro.db.pager import BufferPool, FileStorage, InMemoryStorage
from repro.db.relation import Relation
from repro.db.types import Column, Schema


class Database:
    """A named collection of relations sharing a buffer pool."""

    def __init__(self, pool: BufferPool | None = None, pool_capacity: int = 4096) -> None:
        self.pool = pool if pool is not None else BufferPool(capacity=pool_capacity)
        self._relations: dict[str, Relation] = {}

    @classmethod
    def on_disk(cls, path: str, pool_capacity: int = 4096) -> "Database":
        """Open a database whose pages live in a file at ``path``."""
        return cls(BufferPool(FileStorage(path), capacity=pool_capacity))

    @classmethod
    def in_memory(cls, pool_capacity: int = 4096) -> "Database":
        """Open a database whose pages live in RAM."""
        return cls(BufferPool(InMemoryStorage(), capacity=pool_capacity))

    def create_relation(self, name: str, columns: Iterable[Column]) -> Relation:
        """Create a relation; raises if the name is taken."""
        if name in self._relations:
            raise RelationError(f"relation {name!r} already exists")
        relation = Relation(name, Schema(columns), self.pool)
        self._relations[name] = relation
        return relation

    def relation(self, name: str) -> Relation:
        """Look up a relation by name; raises RelationError if absent."""
        try:
            return self._relations[name]
        except KeyError:
            raise RelationError(f"no relation named {name!r}") from None

    def drop_relation(self, name: str) -> None:
        """Remove a relation from the catalog (pages are not reclaimed)."""
        if name not in self._relations:
            raise RelationError(f"no relation named {name!r}")
        del self._relations[name]

    def relation_names(self) -> tuple[str, ...]:
        """Names of all catalogued relations, in creation order."""
        return tuple(self._relations)

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def close(self) -> None:
        """Flush and release the buffer pool; drop the catalog."""
        self.pool.close()
        self._relations.clear()

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
