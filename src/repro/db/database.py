"""The database facade: a catalog of relations over one buffer pool.

Plays the role of the operational data warehouse in the paper: the reference
relation, the pre-ETI, and the ETI all live here as standard relations.

Durability: :meth:`Database.on_disk` opens with a write-ahead log by
default.  Mutations grouped under :meth:`Database.transaction` are
all-or-nothing across a process crash — the commit record carries the
catalog manifest, so recovery (on the next open) restores relations whose
heaps grew or shrank mid-transaction.  Opening a path whose log holds
committed transactions replays them; a torn log tail (the crash landed
mid-append) is discarded.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from typing import Iterable, Iterator

from repro.db.catalog import apply_catalog, encode_catalog
from repro.db.errors import RelationError
from repro.db.pager import BufferPool, FileStorage, InMemoryStorage
from repro.db.relation import Relation
from repro.db.types import Column, Schema
from repro.db.wal import WalFile, WalStorage


class Database:
    """A named collection of relations sharing a buffer pool."""

    def __init__(self, pool: BufferPool | None = None, pool_capacity: int = 4096) -> None:
        self.pool = pool if pool is not None else BufferPool(capacity=pool_capacity)
        self._relations: dict[str, Relation] = {}
        self._txn_depth = 0

    @classmethod
    def on_disk(
        cls,
        path: str,
        pool_capacity: int = 4096,
        wal: bool = True,
        wal_path: str | None = None,
    ) -> "Database":
        """Open a database whose pages live in a file at ``path``.

        With ``wal=True`` (the default) writes are staged in a write-ahead
        log at ``wal_path`` (default ``path + ".wal"``); an existing log is
        recovered on open — committed transactions replayed, torn tails
        discarded — and a committed catalog manifest in the log restores
        the relations it describes.  ``wal=False`` gives the historical
        write-in-place behavior (no crash atomicity).
        """
        storage = FileStorage(path)
        if not wal:
            return cls(BufferPool(storage, capacity=pool_capacity))
        wal_storage = WalStorage(storage, WalFile(wal_path or path + ".wal"))
        db = cls(BufferPool(wal_storage, capacity=pool_capacity))
        manifest = wal_storage.recovered_catalog
        if manifest is not None:
            apply_catalog(db, json.loads(manifest.decode("utf-8"))["relations"])
        return db

    @classmethod
    def in_memory(cls, pool_capacity: int = 4096) -> "Database":
        """Open a database whose pages live in RAM."""
        return cls(BufferPool(InMemoryStorage(), capacity=pool_capacity))

    @property
    def wal(self) -> WalStorage | None:
        """This database's write-ahead log backend, when it has one."""
        return self.pool.wal

    @contextmanager
    def transaction(self) -> Iterator[None]:
        """Group mutations into one crash-atomic unit.

        On exit, dirty pages are flushed into the write-ahead log and
        committed together with the catalog manifest — after a crash,
        either the whole group is recovered or none of it.  Nestable: only
        the outermost level commits.  Without a WAL this is a plain flush
        on exit (no crash atomicity).

        On an exception the staged log records are abandoned, but
        in-memory state above the pool (heap directories, B+-trees) is
        NOT rolled back — discard this object and reopen the database.
        """
        if self._txn_depth == 0:
            self.pool.begin_transaction()
        self._txn_depth += 1
        try:
            yield
        # A transaction must abort on *any* exit — KeyboardInterrupt
        # included — and re-raise unchanged; nothing is swallowed here.
        except BaseException:  # reprolint: disable=exception-taxonomy
            self._txn_depth -= 1
            if self._txn_depth == 0:
                self.pool.abort_transaction()
            raise
        else:
            self._txn_depth -= 1
            if self._txn_depth == 0:
                self.pool.commit_transaction(self._catalog_payload())

    def _catalog_payload(self) -> bytes:
        """The catalog manifest bytes a transaction commit carries."""
        return json.dumps({"relations": encode_catalog(self)}).encode("utf-8")

    def create_relation(self, name: str, columns: Iterable[Column]) -> Relation:
        """Create a relation; raises if the name is taken."""
        if name in self._relations:
            raise RelationError(f"relation {name!r} already exists")
        relation = Relation(name, Schema(columns), self.pool)
        self._relations[name] = relation
        return relation

    def relation(self, name: str) -> Relation:
        """Look up a relation by name; raises RelationError if absent."""
        try:
            return self._relations[name]
        except KeyError:
            raise RelationError(f"no relation named {name!r}") from None

    def drop_relation(self, name: str) -> None:
        """Remove a relation from the catalog (pages are not reclaimed)."""
        if name not in self._relations:
            raise RelationError(f"no relation named {name!r}")
        del self._relations[name]

    def relation_names(self) -> tuple[str, ...]:
        """Names of all catalogued relations, in creation order."""
        return tuple(self._relations)

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def close(self) -> None:
        """Flush and release the buffer pool; drop the catalog."""
        self.pool.close()
        self._relations.clear()

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
