"""Slotted pages.

Each page is a fixed-size byte buffer laid out in the classic slotted-page
format: a header, a slot directory growing from the front, and record data
growing from the back.  Records never span pages; callers (the heap file)
are responsible for routing oversized records to fresh pages or rejecting
them.

Layout::

    [num_slots: u16][free_end: u16][slot 0][slot 1]... ...[data][data]
    slot = [offset: u16][length: u16]

A deleted slot has offset 0 — no live record can start inside the header,
so the marker never collides with a genuinely empty record.
"""

from __future__ import annotations

import struct
from typing import Iterator

from repro.db.errors import PageFullError, RecordNotFoundError

PAGE_SIZE = 8192

_HEADER = struct.Struct("<HH")
_SLOT = struct.Struct("<HH")
_HEADER_SIZE = _HEADER.size
_SLOT_SIZE = _SLOT.size

# Largest record a page can hold: full page minus header and one slot.
MAX_RECORD_SIZE = PAGE_SIZE - _HEADER_SIZE - _SLOT_SIZE


class Page:
    """A single slotted page over a ``bytearray`` buffer."""

    __slots__ = ("data", "dirty")

    def __init__(self, data: bytes | bytearray | None = None) -> None:
        if data is None:
            self.data = bytearray(PAGE_SIZE)
            self._write_header(0, PAGE_SIZE)
        else:
            if len(data) != PAGE_SIZE:
                raise ValueError(f"page buffer must be {PAGE_SIZE} bytes")
            self.data = bytearray(data)
        self.dirty = False

    def _write_header(self, num_slots: int, free_end: int) -> None:
        _HEADER.pack_into(self.data, 0, num_slots, free_end % 65536)

    def _read_header(self) -> tuple[int, int]:
        num_slots, free_end = _HEADER.unpack_from(self.data, 0)
        # free_end == 0 encodes PAGE_SIZE (a fresh page) since the field
        # is 16 bits and PAGE_SIZE == 65536 would not fit; with an 8 KiB
        # page this wrap never triggers, but keep the decode symmetric.
        if free_end == 0 and num_slots == 0:
            free_end = PAGE_SIZE
        return num_slots, free_end

    @property
    def num_slots(self) -> int:
        """Number of slot directory entries (including deleted slots)."""
        return self._read_header()[0]

    @property
    def free_space(self) -> int:
        """Bytes available for one more record (including its slot entry)."""
        num_slots, free_end = self._read_header()
        used_front = _HEADER_SIZE + num_slots * _SLOT_SIZE
        gap = free_end - used_front
        return max(0, gap - _SLOT_SIZE)

    def can_fit(self, record: bytes) -> bool:
        """True iff ``record`` plus its slot entry fits in free space."""
        return len(record) <= self.free_space

    def insert(self, record: bytes) -> int:
        """Store ``record`` and return its slot number."""
        if len(record) > MAX_RECORD_SIZE:
            raise PageFullError(
                f"record of {len(record)} bytes exceeds max {MAX_RECORD_SIZE}"
            )
        if not self.can_fit(record):
            raise PageFullError("page cannot fit record")
        num_slots, free_end = self._read_header()
        offset = free_end - len(record)
        self.data[offset:free_end] = record
        slot_pos = _HEADER_SIZE + num_slots * _SLOT_SIZE
        _SLOT.pack_into(self.data, slot_pos, offset, len(record))
        self._write_header(num_slots + 1, offset)
        self.dirty = True
        return num_slots

    def read(self, slot: int) -> bytes:
        """Return the record stored in ``slot``."""
        offset, length = self._slot_entry(slot)
        if offset == 0:
            raise RecordNotFoundError(f"slot {slot} is deleted")
        return bytes(self.data[offset : offset + length])

    def delete(self, slot: int) -> None:
        """Mark ``slot`` deleted.  Space is not compacted."""
        offset, _ = self._slot_entry(slot)
        if offset == 0:
            raise RecordNotFoundError(f"slot {slot} already deleted")
        slot_pos = _HEADER_SIZE + slot * _SLOT_SIZE
        _SLOT.pack_into(self.data, slot_pos, 0, 0)
        self.dirty = True

    def validate(self) -> list[str]:
        """Structural problems with the slotted layout (empty list = sound).

        Checks the invariants the mutation methods maintain: the slot
        directory and the data area must not overlap, and every live slot
        must point inside the data area.  Used by ``repro fsck`` on pages
        whose checksum provenance is unknown.
        """
        problems: list[str] = []
        num_slots, free_end = self._read_header()
        front = _HEADER_SIZE + num_slots * _SLOT_SIZE
        if front > PAGE_SIZE:
            return [f"slot directory overruns the page ({num_slots} slots)"]
        if not front <= free_end <= PAGE_SIZE:
            problems.append(
                f"free_end {free_end} outside [{front}, {PAGE_SIZE}]"
            )
            return problems
        for slot in range(num_slots):
            offset, length = _SLOT.unpack_from(
                self.data, _HEADER_SIZE + slot * _SLOT_SIZE
            )
            if offset == 0:
                continue  # deleted
            if offset < free_end or offset + length > PAGE_SIZE:
                problems.append(
                    f"slot {slot} record [{offset}, {offset + length}) "
                    f"outside data area [{free_end}, {PAGE_SIZE}]"
                )
        return problems

    def records(self) -> Iterator[tuple[int, bytes]]:
        """Yield ``(slot, record)`` for every live record on the page."""
        num_slots, _ = self._read_header()
        for slot in range(num_slots):
            offset, length = _SLOT.unpack_from(
                self.data, _HEADER_SIZE + slot * _SLOT_SIZE
            )
            if offset:
                yield slot, bytes(self.data[offset : offset + length])

    def _slot_entry(self, slot: int) -> tuple[int, int]:
        num_slots, _ = self._read_header()
        if not 0 <= slot < num_slots:
            raise RecordNotFoundError(f"slot {slot} out of range (have {num_slots})")
        return _SLOT.unpack_from(self.data, _HEADER_SIZE + slot * _SLOT_SIZE)
