"""Structure-aware fuzzing of the system's trust boundaries.

Three boundaries take bytes from outside the process and must never
crash, hang, or fail untyped on them:

- the **wire** protocol (newline-delimited JSON over TCP) — fuzzed
  against a live in-process :class:`~repro.serve.server.MatchServer`;
- the **WAL** recovery scan — fuzzed by mutating a real log with a
  committed tail and reopening the database;
- the **snapshot** metadata loader — fuzzed by mutating the catalog
  JSON the same way.

Everything is seeded: a ``(seed, case)`` pair replays exactly, failing
inputs land in a corpus directory, and a greedy minimizer shrinks each
one to a small reproducer.  ``repro fuzz`` is the CLI entry point;
``--smoke`` is the CI-sized sweep.
"""

from repro.fuzz.disk import SnapshotTarget, WalTarget
from repro.fuzz.harness import (
    TARGETS,
    FuzzFailure,
    FuzzReport,
    minimize,
    run_fuzz,
)
from repro.fuzz.mutators import MUTATORS, chunk_plan, mutate
from repro.fuzz.wire import WireTarget

__all__ = [
    "chunk_plan",
    "FuzzFailure",
    "FuzzReport",
    "minimize",
    "MUTATORS",
    "mutate",
    "run_fuzz",
    "SnapshotTarget",
    "TARGETS",
    "WalTarget",
    "WireTarget",
]
