"""On-disk fuzz targets: mutated WAL files and snapshot metadata.

Both targets share one pristine fixture, built once per run: an on-disk
warehouse holding the paper's organization relation with its ETI (so the
snapshot catalog carries indexes, the richest shape ``apply_catalog``
accepts), plus a small relation with a committed-but-uncheckpointed WAL
tail — the state a crash leaves behind and recovery must parse.

Each case copies the pristine page/metadata/log triple into a scratch
directory, replaces exactly one file with mutated bytes, and calls
:func:`~repro.db.snapshot.load_database`:

- ``WalTarget`` mutates the write-ahead log;
- ``SnapshotTarget`` mutates the ``.meta.json`` catalog metadata.

The invariant: the load either succeeds (and the rows scan cleanly) or
raises a typed :class:`~repro.db.errors.DatabaseError` — never a raw
``KeyError``/``struct.error``/segfault, and never past the deadline.
"""

from __future__ import annotations

import os
import random
import shutil
import tempfile
import time
from types import TracebackType

from repro.fuzz.mutators import mutate

__all__ = ["SnapshotTarget", "WalTarget"]

_ORG_COLUMNS = ("org_name", "city", "state", "zipcode")
_ORG_ROWS = (
    (1, ("Boeing Company", "Seattle", "WA", "98004")),
    (2, ("Bon Corporation", "Seattle", "WA", "98014")),
    (3, ("Companions", "Seattle", "WA", "98024")),
)


def _build_fixture(root: str) -> dict[str, bytes]:
    """Build the pristine page/metadata/log triple under ``root``."""
    from repro.core.config import MatchConfig, SignatureScheme
    from repro.core.reference import ReferenceTable
    from repro.db.database import Database
    from repro.db.snapshot import load_database, save_database
    from repro.db.types import Column, ColumnType
    from repro.eti.builder import build_eti

    path = os.path.join(root, "fixture.pages")
    db = Database.on_disk(path)
    reference = ReferenceTable(db, "orgs", list(_ORG_COLUMNS))
    reference.load(_ORG_ROWS)
    config = MatchConfig(q=3, signature_size=2, scheme=SignatureScheme.QGRAMS)
    build_eti(db, reference, config)
    rel = db.create_relation("t", [Column("k", ColumnType.INT)])
    rel.insert((1,))
    save_database(db)
    db.close()

    # Leave a committed, uncheckpointed tail in the log — the shape WAL
    # recovery has to parse on every reopen after a crash.
    reopened = load_database(path)
    with reopened.transaction():
        reopened.relation("t").insert((2,))
    reopened.pool.storage.close()

    out: dict[str, bytes] = {}
    for key, name in (
        ("pages", "fixture.pages"),
        ("meta", "fixture.pages.meta.json"),
        ("wal", "fixture.pages.wal"),
    ):
        with open(os.path.join(root, name), "rb") as handle:
            out[key] = handle.read()
    return out


class _DiskTarget:
    """Shared machinery: fixture lifecycle and the load-and-check loop."""

    name = "disk"
    #: which pristine file the subclass mutates: ``"wal"`` or ``"meta"``.
    mutates = "wal"

    def __init__(self, case_deadline_s: float = 5.0) -> None:
        if case_deadline_s <= 0:
            raise ValueError(
                f"case_deadline_s must be positive, got {case_deadline_s}"
            )
        self.case_deadline_s = case_deadline_s
        self._root: str | None = None
        self._pristine: dict[str, bytes] | None = None

    def start(self) -> None:
        """Build the pristine fixture in a scratch directory."""
        self._root = tempfile.mkdtemp(prefix=f"repro-fuzz-{self.name}-")
        fixture_dir = os.path.join(self._root, "fixture")
        os.makedirs(fixture_dir)
        self._pristine = _build_fixture(fixture_dir)

    def close(self) -> None:
        """Remove the scratch directory."""
        if self._root is not None:
            shutil.rmtree(self._root, ignore_errors=True)
            self._root = None
        self._pristine = None

    def reset(self) -> None:
        """Disk targets hold no live state between cases — nothing to do."""

    def __enter__(self) -> "_DiskTarget":
        self.start()
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.close()

    def run_case(
        self, rng: random.Random
    ) -> tuple[bytes, tuple[str, ...], str] | None:
        """One fuzz case; ``None`` when clean, else (input, recipe, detail)."""
        if self._pristine is None:
            raise RuntimeError(f"{type(self).__name__} is not started")
        data, recipe = mutate(self._pristine[self.mutates], rng)
        detail = self.check_input(data)
        if detail is None:
            return None
        return data, recipe, detail

    def check_input(self, data: bytes) -> str | None:
        """Load the fixture with one file replaced by ``data``."""
        from repro.db.errors import DatabaseError
        from repro.db.snapshot import load_database

        if self._root is None or self._pristine is None:
            raise RuntimeError(f"{type(self).__name__} is not started")
        case_dir = tempfile.mkdtemp(dir=self._root, prefix="case-")
        path = os.path.join(case_dir, "db.pages")
        files = {
            "pages": path,
            "meta": path + ".meta.json",
            "wal": path + ".wal",
        }
        try:
            for key, target_path in files.items():
                payload = data if key == self.mutates else self._pristine[key]
                with open(target_path, "wb") as handle:
                    handle.write(payload)
            started = time.monotonic()
            try:
                db = load_database(path, pool_capacity=64)
            except DatabaseError:
                db = None  # typed refusal: the invariant holds
            except Exception as exc:  # reprolint: disable=exception-taxonomy
                # The whole point of the target: anything outside the
                # DatabaseError taxonomy is an invariant violation.
                return f"untyped load failure: {type(exc).__name__}: {exc}"
            if db is not None:
                try:
                    sorted(db.relation("t").scan())
                except DatabaseError:
                    pass  # typed late failure while deserializing — fine
                except Exception as exc:  # reprolint: disable=exception-taxonomy
                    return f"untyped scan failure: {type(exc).__name__}: {exc}"
                finally:
                    try:
                        db.close()
                    except (DatabaseError, OSError):
                        pass  # a typed/IO close failure is acceptable
            elapsed = time.monotonic() - started
            if elapsed > self.case_deadline_s:
                return f"load exceeded the case deadline ({elapsed:.1f}s)"
            return None
        finally:
            shutil.rmtree(case_dir, ignore_errors=True)


class WalTarget(_DiskTarget):
    """Fuzzes the write-ahead log recovery scan."""

    name = "wal"
    mutates = "wal"


class SnapshotTarget(_DiskTarget):
    """Fuzzes the snapshot catalog metadata loader."""

    name = "snapshot"
    mutates = "meta"
