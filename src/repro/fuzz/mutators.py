"""Seeded, structure-aware byte mutators for the fuzz harness.

Every mutator is a pure function ``(data, rng) -> bytes``: the only
source of nondeterminism is the :class:`random.Random` instance the
caller passes in, so a seed fully determines a mutation sequence and
every crashing input can be replayed from ``(seed, case index)`` alone.

The vocabulary is chosen for newline-delimited JSON and small binary
file formats (WAL records, snapshot metadata):

- ``truncate`` — cut the input short at a random point (torn writes);
- ``bit_flip`` — flip 1..8 random bits (line noise, disk rot);
- ``splice`` — duplicate or transplant a random slice (misordered or
  replayed partial writes);
- ``type_confuse`` — swap JSON tokens in place (``:`` for ``,``,
  ``true`` for a string, a digit for a brace) so the bytes stay mostly
  parseable and reach deeper validation layers;
- ``oversize`` — inflate the input past a size budget (memory-exhaustion
  probes against ``max_frame_bytes``-style limits).

Delivery is mutated separately: :func:`chunk_plan` splits a payload into
write-sized pieces (down to one byte per ``send``) to exercise partial
reads — the "split across writes" axis.
"""

from __future__ import annotations

import random
from typing import Callable

__all__ = [
    "MUTATORS",
    "Mutator",
    "chunk_plan",
    "mutate",
]

Mutator = Callable[[bytes, random.Random], bytes]
"""A deterministic byte transformation driven only by the given RNG."""

# JSON token pairs swapped by ``type_confuse``: each left token may be
# replaced by its right partner, changing the *type* of a value while
# keeping the input superficially well-formed.
_TOKEN_SWAPS: tuple[tuple[bytes, bytes], ...] = (
    (b'"', b"1"),
    (b"[", b"{"),
    (b"]", b"}"),
    (b"{", b"["),
    (b"}", b"]"),
    (b"true", b'"true"'),
    (b"false", b"0.5"),
    (b"null", b"[]"),
    (b":", b","),
    (b",", b":"),
)


def _truncate(data: bytes, rng: random.Random) -> bytes:
    """Cut the input at a random offset (possibly to nothing)."""
    if not data:
        return data
    return data[: rng.randrange(len(data))]


def _bit_flip(data: bytes, rng: random.Random) -> bytes:
    """Flip 1..8 random bits anywhere in the input."""
    if not data:
        return data
    buf = bytearray(data)
    for _ in range(rng.randint(1, 8)):
        pos = rng.randrange(len(buf))
        buf[pos] ^= 1 << rng.randrange(8)
    return bytes(buf)


def _splice(data: bytes, rng: random.Random) -> bytes:
    """Copy a random slice of the input over or into a random position."""
    if len(data) < 2:
        return data + data
    start = rng.randrange(len(data) - 1)
    end = rng.randrange(start + 1, len(data))
    piece = data[start:end]
    at = rng.randrange(len(data))
    if rng.random() < 0.5:
        return data[:at] + piece + data[at:]  # insert (grows)
    return data[:at] + piece + data[at + len(piece) :]  # overwrite


def _type_confuse(data: bytes, rng: random.Random) -> bytes:
    """Swap one JSON token for a differently-typed one, in place."""
    candidates = [
        (token, repl) for token, repl in _TOKEN_SWAPS if token in data
    ]
    if not candidates:
        return _bit_flip(data, rng)
    token, repl = candidates[rng.randrange(len(candidates))]
    occurrences = data.count(token)
    pick = rng.randrange(occurrences)
    pos = -1
    for _ in range(pick + 1):
        pos = data.index(token, pos + 1)
    return data[:pos] + repl + data[pos + len(token) :]


def _oversize(data: bytes, rng: random.Random) -> bytes:
    """Inflate the input past a size budget by repeating a slice.

    The target size is 64 KiB..256 KiB — comfortably past the tight
    ``max_frame_bytes`` the fuzz targets configure, while staying cheap
    enough to generate hundreds of times per sweep.
    """
    target = rng.randrange(64 * 1024, 256 * 1024)
    filler = data if data else b"A"
    body = filler * (target // max(1, len(filler)) + 1)
    return body[:target]


MUTATORS: dict[str, Mutator] = {
    "truncate": _truncate,
    "bit_flip": _bit_flip,
    "splice": _splice,
    "type_confuse": _type_confuse,
    "oversize": _oversize,
}
"""The mutation vocabulary, by name (names appear in failure reports)."""


def mutate(
    data: bytes, rng: random.Random, max_rounds: int = 3
) -> tuple[bytes, tuple[str, ...]]:
    """Apply 1..``max_rounds`` randomly chosen mutators in sequence.

    Returns the mutated bytes and the names of the mutators applied, in
    order — the names go into failure reports so a crasher's recipe is
    visible without replaying it.
    """
    if max_rounds < 1:
        raise ValueError(f"max_rounds must be >= 1, got {max_rounds}")
    names = sorted(MUTATORS)
    applied: list[str] = []
    for _ in range(rng.randint(1, max_rounds)):
        name = names[rng.randrange(len(names))]
        applied.append(name)
        data = MUTATORS[name](data, rng)
    return data, tuple(applied)


def chunk_plan(total: int, rng: random.Random) -> tuple[int, ...]:
    """Split ``total`` bytes into write-sized chunks (the delivery axis).

    Three regimes, uniformly chosen: one whole write, byte-at-a-time for
    the first few dozen bytes then the rest at once (a bounded slow-
    writer), or random chunks of 1..1024 bytes.  Chunk sizes always sum
    to ``total``.
    """
    if total <= 0:
        return ()
    style = rng.randrange(3)
    if style == 0:
        return (total,)
    if style == 1:
        dribble = min(total, rng.randint(1, 64))
        plan = [1] * dribble
        if total > dribble:
            plan.append(total - dribble)
        return tuple(plan)
    plan = []
    left = total
    while left > 0:
        step = min(left, rng.randint(1, 1024))
        plan.append(step)
        left -= step
    return tuple(plan)
