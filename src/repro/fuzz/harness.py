"""The fuzz driver: seeded sweeps, a failure corpus, greedy minimization.

:func:`run_fuzz` runs ``cases_per_seed`` mutated inputs for each seed
against one of the four targets (``wire``, ``stats``, ``wal``,
``snapshot``) and returns a :class:`FuzzReport`.  A seed fully determines its case
sequence, so any failure is replayable from ``(target, seed, case)``.

When a case violates the target's invariant the raw input is written to
the corpus directory (if one is given), then shrunk by
:func:`minimize` — greedy chunk deletion, re-checking the invariant
after each cut — and the minimized reproducer is written alongside it.
The wire target is restarted after every failing check so a wedged
server cannot make later cases (or shrink steps) fail vacuously.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Protocol

from repro.fuzz.disk import SnapshotTarget, WalTarget
from repro.fuzz.wire import StatsTarget, WireTarget

__all__ = [
    "FuzzFailure",
    "FuzzReport",
    "FuzzTarget",
    "TARGETS",
    "minimize",
    "run_fuzz",
]


class FuzzTarget(Protocol):
    """What the driver needs from a target: lifecycle + two check modes."""

    name: str
    case_deadline_s: float

    def start(self) -> None:
        """Bring the target up (server, fixture files)."""

    def close(self) -> None:
        """Tear the target down."""

    def reset(self) -> None:
        """Recover a possibly-wedged target between checks."""

    def run_case(
        self, rng: random.Random
    ) -> tuple[bytes, tuple[str, ...], str] | None:
        """One mutated case; ``None`` when clean."""

    def check_input(self, data: bytes) -> str | None:
        """Replay a fixed input; ``None`` when the invariant holds."""


TARGETS: dict[str, Callable[..., FuzzTarget]] = {
    "wire": WireTarget,
    "stats": StatsTarget,
    "wal": WalTarget,
    "snapshot": SnapshotTarget,
}
"""Fuzz targets by CLI name."""


@dataclass(frozen=True)
class FuzzFailure:
    """One invariant violation: where it came from and how to replay it."""

    target: str
    seed: int
    case: int
    recipe: tuple[str, ...]
    detail: str
    input_bytes: int
    minimized_bytes: int | None = None
    input_path: str | None = None
    minimized_path: str | None = None

    def as_dict(self) -> dict[str, Any]:
        """A JSON-ready view for reports and CI artifacts."""
        return {
            "target": self.target,
            "seed": self.seed,
            "case": self.case,
            "recipe": list(self.recipe),
            "detail": self.detail,
            "input_bytes": self.input_bytes,
            "minimized_bytes": self.minimized_bytes,
            "input_path": self.input_path,
            "minimized_path": self.minimized_path,
        }


@dataclass
class FuzzReport:
    """The outcome of one sweep: counts, timing, and every failure."""

    target: str
    seeds: tuple[int, ...]
    cases_per_seed: int
    cases_run: int = 0
    failures: list[FuzzFailure] = field(default_factory=list)
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        """True when every case held the invariant."""
        return not self.failures

    def as_dict(self) -> dict[str, Any]:
        """A JSON-ready view (what ``repro fuzz`` prints)."""
        return {
            "target": self.target,
            "seeds": list(self.seeds),
            "cases_per_seed": self.cases_per_seed,
            "cases_run": self.cases_run,
            "failures": [failure.as_dict() for failure in self.failures],
            "ok": self.ok,
            "elapsed_s": round(self.elapsed_s, 3),
        }


def minimize(
    data: bytes,
    still_fails: Callable[[bytes], bool],
    max_checks: int = 96,
) -> bytes:
    """Greedy chunk-deletion shrink: keep cuts that still reproduce.

    A bounded ddmin variant: try deleting chunks of ``len/2``, halving
    the chunk size whenever a full pass removes nothing, down to single
    bytes.  ``still_fails`` is called at most ``max_checks`` times, so a
    slow target bounds the shrink effort rather than the other way
    around.  Returns the smallest input seen that still fails.
    """
    if max_checks < 1:
        raise ValueError(f"max_checks must be >= 1, got {max_checks}")
    checks = 0
    chunk = max(1, len(data) // 2)
    while len(data) > 1 and checks < max_checks:
        removed_any = False
        offset = 0
        while offset < len(data) and checks < max_checks:
            candidate = data[:offset] + data[offset + chunk :]
            checks += 1
            if len(candidate) < len(data) and still_fails(candidate):
                data = candidate
                removed_any = True
            else:
                offset += chunk
        if not removed_any:
            if chunk == 1:
                break
            chunk = max(1, chunk // 2)
        else:
            chunk = max(1, min(chunk, len(data) // 2))
    return data


def _write_corpus_file(
    corpus_dir: str, name: str, data: bytes
) -> str:
    """Write one corpus artifact and return its path."""
    os.makedirs(corpus_dir, exist_ok=True)
    path = os.path.join(corpus_dir, name)
    with open(path, "wb") as handle:
        handle.write(data)
    return path


def run_fuzz(
    target_name: str,
    seeds: tuple[int, ...] = (0, 1, 2),
    cases_per_seed: int = 100,
    corpus_dir: str | None = None,
    case_deadline_s: float = 5.0,
) -> FuzzReport:
    """Sweep one target across the given seeds; return the full report.

    Failing inputs are written to ``corpus_dir`` (raw and minimized)
    when one is given; without it failures are still minimized so the
    report carries the reproducer's size, just not persisted.
    """
    if target_name not in TARGETS:
        raise ValueError(
            f"unknown fuzz target {target_name!r}; "
            f"expected one of {sorted(TARGETS)}"
        )
    if cases_per_seed < 1:
        raise ValueError(f"cases_per_seed must be >= 1, got {cases_per_seed}")
    report = FuzzReport(
        target=target_name,
        seeds=tuple(seeds),
        cases_per_seed=cases_per_seed,
    )
    started = time.monotonic()
    target = TARGETS[target_name](case_deadline_s=case_deadline_s)
    target.start()
    try:
        for seed in report.seeds:
            rng = random.Random(seed)
            for case in range(cases_per_seed):
                outcome = target.run_case(rng)
                report.cases_run += 1
                if outcome is None:
                    continue
                data, recipe, detail = outcome
                report.failures.append(
                    _handle_failure(
                        target, corpus_dir, seed, case, data, recipe, detail
                    )
                )
    finally:
        target.close()
    report.elapsed_s = time.monotonic() - started
    return report


def _handle_failure(
    target: FuzzTarget,
    corpus_dir: str | None,
    seed: int,
    case: int,
    data: bytes,
    recipe: tuple[str, ...],
    detail: str,
) -> FuzzFailure:
    """Persist, recover, and minimize one failing input."""
    input_path = None
    minimized_path = None
    stem = f"{target.name}-s{seed}-c{case}"
    if corpus_dir is not None:
        input_path = _write_corpus_file(corpus_dir, f"{stem}.bin", data)
    # The failing case may have wedged the target (wire: a hung or
    # crashed server); recover before replaying shrunk candidates.
    target.reset()

    def still_fails(candidate: bytes) -> bool:
        failed = target.check_input(candidate) is not None
        if failed:
            target.reset()
        return failed

    minimized = minimize(data, still_fails)
    if corpus_dir is not None:
        minimized_path = _write_corpus_file(
            corpus_dir, f"{stem}.min.bin", minimized
        )
    return FuzzFailure(
        target=target.name,
        seed=seed,
        case=case,
        recipe=recipe,
        detail=detail,
        input_bytes=len(data),
        minimized_bytes=len(minimized),
        input_path=input_path,
        minimized_path=minimized_path,
    )
