"""Wire-protocol fuzz target: mutated frames against a live server.

Stands up a real in-process :class:`~repro.serve.server.MatchServer`
over the paper's three-row organization relation (Table 1) with
deliberately tight boundary limits — a small ``max_frame_bytes``, short
frame and write timeouts, a low pipelining cap — then delivers mutated
frames over real TCP connections, split across writes according to a
seeded chunk plan.

The invariant checked per case:

- every response line the server emits is a JSON object (typed) —
  closing the connection after a non-recoverable typed shed is also
  acceptable;
- the exchange finishes within the case deadline (no hangs);
- after the hostile exchange a *fresh* connection's ``ping`` answers
  within the deadline (the process survived).
"""

from __future__ import annotations

import json
import random
import socket
import time
from types import TracebackType

from repro.fuzz.mutators import chunk_plan, mutate

__all__ = ["StatsTarget", "WireTarget"]

# Table 1 of the paper — small enough that an engine builds in
# milliseconds, rich enough that match requests exercise the full path.
_ORG_COLUMNS = ("org_name", "city", "state", "zipcode")
_ORG_ROWS = (
    (1, ("Boeing Company", "Seattle", "WA", "98004")),
    (2, ("Bon Corporation", "Seattle", "WA", "98014")),
    (3, ("Companions", "Seattle", "WA", "98024")),
)

# Canonical well-formed frames mutations start from: the structure-aware
# part of the fuzzer.  Mutating valid requests reaches far deeper than
# random bytes ever would.
_SEED_FRAMES = (
    b'{"op":"match","values":["Beoing Company","Seattle","WA","98004"]}\n',
    b'{"op":"match","id":"q1","values":["Beoing Co.",null,"WA","98004"],'
    b'"k":2,"min_similarity":0.3,"strategy":"basic","deadline_ms":400,'
    b'"priority":"bulk"}\n',
    b'{"op":"match","values":["Company Beoing","Seattle",null,"98014"],'
    b'"idempotency_key":"fuzz-key-1"}\n',
    b'{"op":"ping"}\n',
    b'{"op":"stats"}\n',
)

_LIVENESS_PROBE = b'{"op":"ping","id":"fuzz-liveness"}\n'


class WireTarget:
    """A live in-process match server plus the hostile-client machinery."""

    name = "wire"
    #: Canonical frames this target's mutations start from; subclasses
    #: narrow the pool to concentrate on one op.
    seed_frames = _SEED_FRAMES

    def __init__(self, case_deadline_s: float = 5.0) -> None:
        if case_deadline_s <= 0:
            raise ValueError(
                f"case_deadline_s must be positive, got {case_deadline_s}"
            )
        self.case_deadline_s = case_deadline_s
        self._server = None
        self._engine = None
        self._db = None
        self._address: tuple[str, int] | None = None

    # -- lifecycle -----------------------------------------------------

    def start(self) -> None:
        """Build the tiny engine and start the server on an OS port."""
        from repro.core.batch import BatchMatcher
        from repro.core.config import MatchConfig, SignatureScheme
        from repro.core.reference import ReferenceTable
        from repro.core.weights import build_frequency_cache
        from repro.db.database import Database
        from repro.eti.builder import build_eti
        from repro.serve.server import MatchServer, ServeConfig

        db = Database.in_memory()
        reference = ReferenceTable(db, "orgs", list(_ORG_COLUMNS))
        reference.load(_ORG_ROWS)
        weights = build_frequency_cache(
            reference.scan_values(), reference.num_columns
        )
        config = MatchConfig(q=3, signature_size=2, scheme=SignatureScheme.QGRAMS)
        eti, _ = build_eti(db, reference, config)
        engine = BatchMatcher(reference, weights, config, eti, jobs=2)
        server = MatchServer(
            engine=engine,
            config=ServeConfig(
                workers=2,
                queue_capacity=16,
                default_deadline_ms=1000.0,
                max_frame_bytes=8192,
                frame_timeout_s=2.0,
                idle_timeout_s=10.0,
                write_timeout_s=2.0,
                max_pipelined_frames=8,
            ),
        )
        self._address = server.start()
        self._server = server
        self._engine = engine
        self._db = db

    def close(self) -> None:
        """Shut the server down and release the engine and database."""
        if self._server is not None:
            self._server.shutdown(drain_budget_s=1.0)
            self._server = None
        if self._engine is not None:
            self._engine.close()
            self._engine = None
        if self._db is not None:
            self._db.close()
            self._db = None
        self._address = None

    def reset(self) -> None:
        """Restart the server — called after a failure may have wedged it."""
        self.close()
        self.start()

    def __enter__(self) -> "WireTarget":
        self.start()
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.close()

    # -- fuzzing -------------------------------------------------------

    def run_case(
        self, rng: random.Random
    ) -> tuple[bytes, tuple[str, ...], str] | None:
        """One fuzz case: mutate a seed frame, deliver it, check invariants.

        Returns ``None`` on a clean case, else ``(input, recipe, detail)``.
        """
        seed_frame = self.seed_frames[rng.randrange(len(self.seed_frames))]
        data, recipe = mutate(seed_frame, rng)
        plan = chunk_plan(len(data), rng)
        detail = self.check_input(data, plan)
        if detail is None:
            return None
        return data, recipe, detail

    def check_input(
        self, data: bytes, plan: tuple[int, ...] | None = None
    ) -> str | None:
        """Deliver ``data`` and verify the invariant; None means clean.

        Used both by :meth:`run_case` and by the harness's minimizer
        (which replays shrunk candidates as a single write).
        """
        deadline = time.monotonic() + self.case_deadline_s
        detail = self._exchange(data, plan or (len(data),), deadline)
        if detail is not None:
            return detail
        return self._liveness(deadline)

    def _exchange(
        self, data: bytes, plan: tuple[int, ...], deadline: float
    ) -> str | None:
        """Send mutated bytes, then a ping; read typed responses back."""
        if self._address is None:
            raise RuntimeError("WireTarget is not started")
        try:
            sock = socket.create_connection(
                self._address, timeout=max(0.1, deadline - time.monotonic())
            )
        except OSError as exc:
            return f"connect failed: {type(exc).__name__}: {exc}"
        try:
            offset = 0
            for size in plan:
                sock.settimeout(max(0.1, deadline - time.monotonic()))
                try:
                    sock.sendall(data[offset : offset + size])
                except OSError:
                    # The server closed on us mid-delivery — a boundary
                    # rejection already happened; liveness still verifies
                    # the process survived.
                    return None
                offset += size
            try:
                # The newline terminates any partial frame the mutated
                # bytes left open; half-closing tells the server no more
                # input is coming, so it answers what it has and closes.
                sock.sendall(b"\n")
                sock.shutdown(socket.SHUT_WR)
            except OSError:
                return None
            return self._read_typed_lines(sock, deadline)
        finally:
            sock.close()

    def _read_typed_lines(self, sock: socket.socket, deadline: float) -> str | None:
        """Every response line until the server closes must be JSON."""
        with sock.makefile("rb") as reader:
            while True:
                sock.settimeout(max(0.1, deadline - time.monotonic()))
                try:
                    line = reader.readline()
                except TimeoutError:
                    return "hang: no response within the case deadline"
                except OSError:
                    return None  # reset after a typed close — acceptable
                if not line:
                    return None  # EOF: the server answered and closed
                if not line.strip():
                    return "untyped response: blank line"
                try:
                    payload = json.loads(line)
                except (json.JSONDecodeError, UnicodeDecodeError):
                    return f"untyped response: not JSON ({line[:80]!r})"
                if not isinstance(payload, dict):
                    return f"untyped response: not an object ({line[:80]!r})"
                if time.monotonic() >= deadline:
                    return "hang: responses kept arriving past the deadline"

    def _liveness(self, deadline: float) -> str | None:
        """A fresh connection's ping must answer within the deadline."""
        budget = max(0.1, deadline - time.monotonic())
        try:
            with socket.create_connection(self._address, timeout=budget) as sock:
                sock.settimeout(budget)
                sock.sendall(_LIVENESS_PROBE)
                with sock.makefile("rb") as reader:
                    line = reader.readline()
        except OSError as exc:
            return f"liveness probe failed: {type(exc).__name__}: {exc}"
        try:
            payload = json.loads(line)
        except (json.JSONDecodeError, UnicodeDecodeError):
            return f"liveness response not JSON: {line[:80]!r}"
        if not isinstance(payload, dict) or payload.get("ok") is not True:
            return f"liveness response not ok: {line[:80]!r}"
        return None


# Canonical stats frames: the default request, every explicit section
# mix, plus near-miss invalids (empty list, bad section, wrong type) so
# mutations straddle the accept/reject boundary of section decoding.
_STATS_SEED_FRAMES = (
    b'{"op":"stats"}\n',
    b'{"op":"stats","id":"s1","sections":["serve"]}\n',
    b'{"op":"stats","sections":["serve","metrics"]}\n',
    b'{"op":"stats","sections":["serve","metrics","traces"]}\n',
    b'{"op":"stats","sections":["traces","traces"]}\n',
    b'{"op":"stats","sections":[]}\n',
    b'{"op":"stats","sections":["bogus"]}\n',
    b'{"op":"stats","sections":"serve"}\n',
    b'{"op":"match","values":["Beoing Company","Seattle","WA","98004"]}\n',
    b'{"op":"ping"}\n',
)

_STATS_PROBE = (
    b'{"op":"stats","id":"fuzz-stats-liveness",'
    b'"sections":["serve","metrics","traces"]}\n'
)


class StatsTarget(WireTarget):
    """Fuzz the ``stats`` op: mutated stats requests against the server.

    Same server and delivery machinery as :class:`WireTarget`, but the
    seed pool concentrates on stats frames (section decoding is the new
    attack surface) and liveness is strengthened: after each hostile
    exchange a fresh connection must answer a well-formed full-section
    stats request with ``ok`` and a ``metrics`` block — proving the
    exposition plane itself survived, not just the ping path.
    """

    name = "stats"
    seed_frames = _STATS_SEED_FRAMES

    def _liveness(self, deadline: float) -> str | None:
        """Ping must answer, then a full stats request must answer."""
        detail = super()._liveness(deadline)
        if detail is not None:
            return detail
        budget = max(0.1, deadline - time.monotonic())
        try:
            with socket.create_connection(self._address, timeout=budget) as sock:
                sock.settimeout(budget)
                sock.sendall(_STATS_PROBE)
                with sock.makefile("rb") as reader:
                    line = reader.readline()
        except OSError as exc:
            return f"stats probe failed: {type(exc).__name__}: {exc}"
        try:
            payload = json.loads(line)
        except (json.JSONDecodeError, UnicodeDecodeError):
            return f"stats probe response not JSON: {line[:80]!r}"
        if not isinstance(payload, dict) or payload.get("ok") is not True:
            return f"stats probe response not ok: {line[:80]!r}"
        if "metrics" not in payload:
            return f"stats probe response lacks metrics: {line[:120]!r}"
        return None
