"""Intra-function dataflow helpers for the interprocedural rules.

Two small analyses, both deliberately *structural* (AST shape, source
order) rather than full control-flow-graph dataflow — precise enough for
the invariants :mod:`repro.analysis.rules_interproc` checks, simple
enough to stay obviously correct:

- :func:`reaching_params` — which declared parameters reach which local
  names through simple aliasing (``d = deadline``; ``remaining =
  deadline.remaining()``).  The deadline-propagation rule uses it to
  accept ``callee(timeout=remaining)`` as forwarding ``deadline``.
- :func:`find_acquisitions` / :func:`release_facts` — where a function
  acquires a leakable resource (``sock = socket.socket(...)``) and what
  happens to it afterwards: released (``.close()``), released inside a
  ``finally`` or ``except`` of a ``try`` that covers the risky region,
  escaped to the caller/object (returned, stored on ``self``, passed to
  another call), or neither.  The resource-leak rule turns "neither" and
  "risky calls before the first release with no covering handler" into
  findings.

The acquire/release analysis intentionally ignores resources bound by
``with ... as x`` (the context manager is the release) and resources
assigned directly to attributes (``self._fd = os.open(...)`` — object
lifetime, audited via the owner's ``close``).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable

#: Method names that release a resource when called on it.
RELEASE_METHODS = frozenset({"close", "shutdown", "release", "terminate"})

#: Module functions that release a resource passed as their argument.
RELEASE_FUNCTIONS = frozenset({"os.close", "os.closerange"})


def _dotted(expr: ast.expr) -> str | None:
    """``a.b.c`` for a pure ``Name``/``Attribute`` chain, else ``None``."""
    parts: list[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def reaching_params(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> dict[str, frozenset[str]]:
    """Map each local name to the declared parameters that reach it.

    A parameter reaches itself; a simple assignment whose right-hand
    side mentions a reached name propagates every parameter reaching it
    to the target (``rem = deadline.remaining()`` makes ``rem`` carry
    ``deadline``).  One forward pass in source order — loops that feed a
    name back into itself are rare in this codebase and only cost
    precision, never soundness of the *rules* (which treat "reaches" as
    permission, not proof).
    """
    args = func.args
    params = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    if args.vararg is not None:
        params.append(args.vararg.arg)
    if args.kwarg is not None:
        params.append(args.kwarg.arg)
    reaching: dict[str, frozenset[str]] = {
        p: frozenset({p}) for p in params if p not in ("self", "cls")
    }
    for node in ast.walk(func):
        if not isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            continue
        value = node.value
        if value is None:
            continue
        sources: set[str] = set()
        for name_node in ast.walk(value):
            if isinstance(name_node, ast.Name):
                sources.update(reaching.get(name_node.id, frozenset()))
        if not sources:
            continue
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            if isinstance(target, ast.Name):
                merged = reaching.get(target.id, frozenset()) | sources
                reaching[target.id] = frozenset(merged)
    return reaching


def expr_params(expr: ast.expr, reaching: dict[str, frozenset[str]]) -> frozenset[str]:
    """The parameters reaching any name mentioned inside ``expr``."""
    found: set[str] = set()
    for node in ast.walk(expr):
        if isinstance(node, ast.Name):
            found.update(reaching.get(node.id, frozenset()))
    return frozenset(found)


@dataclass(frozen=True)
class Acquisition:
    """One ``name = <acquire call>`` site inside a function."""

    name: str
    call: ast.Call
    line: int


def find_acquisitions(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
    is_acquire: Callable[[ast.Call], bool],
) -> list[Acquisition]:
    """Resource acquisitions bound to plain local names, in source order.

    Handles ``x = acquire()`` and ``x, y = acquire()`` (the first name
    owns the resource — the ``conn, addr = listener.accept()`` shape).
    ``with acquire() as x`` is excluded: the context manager is the
    release.  Acquisitions inside nested ``def``/``lambda`` bodies
    belong to the nested function and are skipped.
    """
    with_calls: set[ast.Call] = set()
    nested: set[ast.AST] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.With):
            for item in node.items:
                if isinstance(item.context_expr, ast.Call):
                    with_calls.add(item.context_expr)
        if (
            isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda))
            and node is not func
        ):
            nested.update(ast.walk(node))
    acquisitions: list[Acquisition] = []
    for node in ast.walk(func):
        if not isinstance(node, ast.Assign) or node in nested:
            continue
        value = node.value
        if (
            not isinstance(value, ast.Call)
            or value in with_calls
            or not is_acquire(value)
        ):
            continue
        target = node.targets[0]
        if isinstance(target, ast.Tuple) and target.elts:
            target = target.elts[0]
        if isinstance(target, ast.Name):
            acquisitions.append(Acquisition(target.id, value, node.lineno))
    acquisitions.sort(key=lambda a: a.line)
    return acquisitions


@dataclass
class ReleaseFacts:
    """What happens to one acquired resource after its acquisition."""

    released: bool = False
    """A release call on the resource exists somewhere after acquisition."""
    escapes: bool = False
    """The resource is returned, yielded, stored, or passed onward."""
    first_out_line: int | None = None
    """Line of the first release or escape, whichever comes first."""
    unguarded_risk: ast.Call | None = None
    """First call between acquisition and ``first_out_line`` that can
    raise without any covering ``try`` releasing the resource."""


def _releases(call: ast.Call, name: str) -> bool:
    """Is ``call`` a release of the resource bound to ``name``?"""
    func = call.func
    if (
        isinstance(func, ast.Attribute)
        and func.attr in RELEASE_METHODS
        and isinstance(func.value, ast.Name)
        and func.value.id == name
    ):
        return True
    dotted = _dotted(func)
    if dotted in RELEASE_FUNCTIONS:
        return any(
            isinstance(arg, ast.Name) and arg.id == name for arg in call.args
        )
    return False


def _escapes(node: ast.AST, name: str) -> bool:
    """Does ``node`` hand the resource named ``name`` to someone else?"""
    if isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
        value = node.value
        if value is not None:
            return any(
                isinstance(n, ast.Name) and n.id == name for n in ast.walk(value)
            )
        return False
    if isinstance(node, ast.Assign):
        # Stored onto an attribute or into a container: ownership moves.
        uses_name = any(
            isinstance(n, ast.Name) and n.id == name for n in ast.walk(node.value)
        )
        if uses_name:
            return any(
                isinstance(t, (ast.Attribute, ast.Subscript)) for t in node.targets
            )
        return False
    if isinstance(node, ast.Call):
        if _releases(node, name):
            return False
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            if any(isinstance(n, ast.Name) and n.id == name for n in ast.walk(arg)):
                return True
    return False


def _covering_trys(
    func: ast.FunctionDef | ast.AsyncFunctionDef, name: str
) -> list[ast.Try]:
    """``try`` statements whose handlers or ``finally`` release ``name``."""
    covering: list[ast.Try] = []
    for node in ast.walk(func):
        if not isinstance(node, ast.Try):
            continue
        cleanup = list(node.finalbody)
        for handler in node.handlers:
            cleanup.extend(handler.body)
        for statement in cleanup:
            if any(
                isinstance(n, ast.Call) and _releases(n, name)
                for n in ast.walk(statement)
            ):
                covering.append(node)
                break
    return covering


def release_facts(
    func: ast.FunctionDef | ast.AsyncFunctionDef, acq: Acquisition
) -> ReleaseFacts:
    """Analyse what happens to ``acq`` after its acquisition line.

    Source-order approximation: events are ordered by line number, and a
    call between the acquisition and the first release/escape counts as
    *risky* unless it sits inside a ``try`` whose ``finally`` or
    exception handlers release the resource.  Conservative in the safe
    direction for this codebase's straight-line acquisition prologues.
    """
    facts = ReleaseFacts()
    covering = _covering_trys(func, acq.name)
    covered_lines: set[int] = set()
    for try_node in covering:
        end = try_node.end_lineno if try_node.end_lineno is not None else try_node.lineno
        covered_lines.update(range(try_node.lineno, end + 1))
    # Handlers of the try the acquisition sits in run only when the body
    # raised — for a body whose first statement is the acquisition that
    # means no resource is held, so their calls are not leak risks.
    for node in ast.walk(func):
        if not isinstance(node, ast.Try) or not node.body:
            continue
        body_end = node.body[-1].end_lineno or node.body[-1].lineno
        if not node.body[0].lineno <= acq.line <= body_end:
            continue
        for handler in node.handlers:
            handler_end = handler.end_lineno or handler.lineno
            covered_lines.update(range(handler.lineno, handler_end + 1))

    # Sub-expressions of the acquisition call (its arguments) evaluate
    # before the resource exists; they cannot leak it.
    acq_subtree = set(ast.walk(acq.call))
    events: list[tuple[int, str, ast.AST]] = []
    for node in ast.walk(func):
        line = getattr(node, "lineno", None)
        if line is None or line < acq.line:
            continue
        if node in acq_subtree:
            continue
        if isinstance(node, ast.Call):
            if _releases(node, acq.name):
                events.append((line, "release", node))
                continue
        if _escapes(node, acq.name):
            events.append((line, "escape", node))
        elif isinstance(node, ast.Call):
            events.append((line, "call", node))
    events.sort(key=lambda e: e[0])

    for line, kind, node in events:
        if kind == "release":
            facts.released = True
            if facts.first_out_line is None:
                facts.first_out_line = line
        elif kind == "escape":
            facts.escapes = True
            if facts.first_out_line is None:
                facts.first_out_line = line
    for line, kind, node in events:
        if facts.first_out_line is not None and line >= facts.first_out_line:
            break
        if kind == "call" and line not in covered_lines:
            assert isinstance(node, ast.Call)
            facts.unguarded_risk = node
            break
    return facts


__all__ = [
    "Acquisition",
    "RELEASE_FUNCTIONS",
    "RELEASE_METHODS",
    "ReleaseFacts",
    "expr_params",
    "find_acquisitions",
    "reaching_params",
    "release_facts",
]
