"""Interprocedural rules: invariants that span functions and files.

PRs 4–7 introduced contracts no per-module rule can see whole: the WAL's
fsync ordering, deadline propagation down the serve → resilience →
matcher stack, the admission queue's semaphore-token accounting, and the
"no blocking I/O while holding a lock" discipline.  These five
:class:`~repro.analysis.framework.ProgramRule` subclasses check them
over the :class:`~repro.analysis.callgraph.Program` built from every
module in the run:

``blocking-under-lock``
    No call inside a ``with self.<...lock...>:`` region may *transitively*
    reach blocking I/O (``time.sleep``, ``os.fsync``, socket ops, raw
    ``os`` file I/O) along resolved call-graph edges.  A thread asleep
    under a lock starves every sibling; fsync under a lock serializes
    the whole pool behind the disk.
``deadline-propagation``
    A function that accepts a deadline/timeout/budget parameter must
    hand it (or a value derived from it) to every resolved callee that
    accepts one — dropping it silently converts a bounded request into
    an unbounded one.
``resource-leak``
    Sockets, file descriptors, and semaphore tokens must be released on
    every path: a resource bound to a local must be closed or handed
    off, risky calls before the hand-off need a covering ``try``, and a
    semaphore ``acquire`` with no ``release`` anywhere in the function
    is flagged (intentional token consumption takes a justified pragma).
``durability-ordering``
    In ``repro/db/wal.py``: a COMMIT append must be followed by a log
    fsync (the durability point), a page image copied into the inner
    backend must be followed by ``inner.sync()`` (checkpoint
    crash-safety), and a PAGE append sharing a function with a COMMIT
    append needs a sync between them.
``shed-exhaustiveness``
    Shed-reason literals used across ``repro/serve/`` must be drawn from
    the protocol's documented ``SHED_REASONS`` set, and every documented
    reason must actually be raised or recorded somewhere — clients
    branch on these strings, so the vocabulary and the code must agree.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.callgraph import DYNAMIC, CallEdge, FunctionInfo, Program
from repro.analysis.dataflow import (
    expr_params,
    find_acquisitions,
    reaching_params,
    release_facts,
)
from repro.analysis.framework import Finding, Module, ProgramRule, register
from repro.analysis.rules_locks import _lock_with_items

# ---------------------------------------------------------------------------
# blocking-under-lock
# ---------------------------------------------------------------------------

#: External callables that block on I/O or time.
BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "os.fsync",
        "os.fdatasync",
        "os.open",
        "os.read",
        "os.write",
        "os.pread",
        "os.pwrite",
        "os.ftruncate",
        "socket.socket",
        "socket.create_connection",
        "select.select",
    }
)

#: Method names (underscores stripped) that block regardless of receiver:
#: ``self._sleep(...)``, ``sock.recv(...)``, ``conn.sendall(...)``.
BLOCKING_METHODS = frozenset(
    {"sleep", "recv", "recv_into", "sendall", "accept", "connect", "fsync"}
)

#: Modules where blocking under the lock is the documented design.
#: ``repro/db/pager.py``: the BufferPool lock *is* the physical-I/O
#: serialization point (WAL appends, page reads, and the fault-retry
#: backoff sleep all deliberately run under it — see the module
#: docstring and db/wal.py's thread-safety note).
SANCTIONED_BLOCKING_MODULES = frozenset({"repro/db/pager.py"})


def _blocking_method_name(call: ast.Call) -> str | None:
    """The blocking method name a call site hits directly, if any."""
    if isinstance(call.func, ast.Attribute):
        name = call.func.attr.strip("_")
        if name in BLOCKING_METHODS:
            return name
    return None


def _lock_regions(info: FunctionInfo) -> list[tuple[str, int, int]]:
    """``(lock attr, first body line, last line)`` per lock ``with``."""
    regions: list[tuple[str, int, int]] = []
    for node in ast.walk(info.node):
        if not isinstance(node, ast.With) or not _lock_with_items(node):
            continue
        if not node.body:
            continue
        end = node.end_lineno if node.end_lineno is not None else node.lineno
        attr = "self._lock"
        for item in node.items:
            expr = item.context_expr
            if isinstance(expr, ast.Attribute) and "lock" in expr.attr.lower():
                attr = f"self.{expr.attr}"
                break
        regions.append((attr, node.body[0].lineno, end))
    return regions


@register
class BlockingUnderLockRule(ProgramRule):
    """No transitive blocking I/O inside ``with self._lock`` regions."""

    name = "blocking-under-lock"
    description = (
        "calls inside `with self.<lock>:` regions must not transitively "
        "reach blocking I/O (sleep, fsync, socket/file ops)"
    )

    def check_program(self, program: Program) -> Iterator[Finding]:
        """Seed blocking sinks, propagate reachability, audit lock regions."""
        seeds: set[str] = set(BLOCKING_CALLS)
        for qualname, info in program.functions.items():
            for edge in program.callees(qualname):
                if edge.callee in BLOCKING_CALLS or (
                    edge.callee == DYNAMIC
                    and _blocking_method_name(edge.call) is not None
                ):
                    seeds.add(qualname)
                    break
        witness = program.reaches(seeds)
        for qualname in sorted(program.functions):
            info = program.functions[qualname]
            if info.module.logical_path in SANCTIONED_BLOCKING_MODULES:
                continue
            regions = _lock_regions(info)
            if not regions:
                continue
            for edge in program.callees(qualname):
                region = next(
                    (r for r in regions if r[1] <= edge.line <= r[2]), None
                )
                if region is None:
                    continue
                yield from self._check_edge(info.module, edge, region[0], witness)

    def _check_edge(
        self,
        module: Module,
        edge: CallEdge,
        lock: str,
        witness: dict[str, tuple[str, ...]],
    ) -> Iterator[Finding]:
        method = _blocking_method_name(edge.call)
        if edge.callee == DYNAMIC and method is not None:
            yield from self.emit(
                module,
                edge.call,
                f"blocking call `.{method}(...)` inside `with {lock}:` — "
                f"move the I/O outside the lock",
            )
            return
        if edge.callee in BLOCKING_CALLS:
            yield from self.emit(
                module,
                edge.call,
                f"blocking call {edge.callee}() inside `with {lock}:` — "
                f"move the I/O outside the lock",
            )
            return
        path = witness.get(edge.callee)
        if path is not None:
            chain = " -> ".join(path)
            yield from self.emit(
                module,
                edge.call,
                f"call inside `with {lock}:` transitively reaches blocking "
                f"I/O: {chain}",
            )


# ---------------------------------------------------------------------------
# deadline-propagation
# ---------------------------------------------------------------------------

#: Substrings that mark a parameter as deadline/budget carrying.
FAMILY_MARKERS = ("deadline", "timeout", "budget")


def _is_family(name: str) -> bool:
    """Is ``name`` a deadline/timeout/budget-family parameter name?"""
    lowered = name.lower()
    return any(marker in lowered for marker in FAMILY_MARKERS)


def _family_attr_in(expr: ast.expr) -> bool:
    """Does ``expr`` mention an attribute with a family-marker name?

    Accepts forwarding through configuration (``self.config.drain_budget_s``)
    or object state (``item.deadline``) — the value is still
    deadline-derived even though no parameter name appears.
    """
    return any(
        isinstance(node, ast.Attribute) and _is_family(node.attr)
        for node in ast.walk(expr)
    )


@register
class DeadlinePropagationRule(ProgramRule):
    """Deadline/budget parameters must flow into callees that accept one."""

    name = "deadline-propagation"
    description = (
        "a function taking a deadline/timeout/budget parameter must forward "
        "it to every resolved callee that accepts one"
    )

    def check_program(self, program: Program) -> Iterator[Finding]:
        """Audit every resolved edge between family-parameter functions."""
        for qualname in sorted(program.functions):
            caller = program.functions[qualname]
            caller_family = [p for p in caller.params if _is_family(p)]
            if not caller_family:
                continue
            reaching = reaching_params(caller.node)
            for edge in program.callees(qualname):
                callee = program.functions.get(edge.callee)
                if callee is None or callee.node.name == "__init__":
                    continue
                callee_family = [p for p in callee.params if _is_family(p)]
                if not callee_family:
                    continue
                if self._forwards(edge.call, caller_family, reaching):
                    continue
                yield from self.emit(
                    caller.module,
                    edge.call,
                    f"{qualname} has {caller_family} but calls "
                    f"{edge.callee} (which accepts {callee_family}) without "
                    f"forwarding any of them — the deadline is dropped here",
                )

    def _forwards(
        self,
        call: ast.Call,
        caller_family: list[str],
        reaching: dict[str, frozenset[str]],
    ) -> bool:
        family_set = frozenset(caller_family)
        arguments = list(call.args) + [kw.value for kw in call.keywords]
        if any(kw.arg is None for kw in call.keywords):
            return True  # **kwargs forwards everything
        for kw in call.keywords:
            if kw.arg is not None and _is_family(kw.arg):
                return True
        for arg in arguments:
            if expr_params(arg, reaching) & family_set:
                return True
            if _family_attr_in(arg):
                return True
        return False


# ---------------------------------------------------------------------------
# resource-leak
# ---------------------------------------------------------------------------

#: Callables whose return value is a leakable OS resource.
ACQUIRE_CALLS = frozenset(
    {"socket.socket", "socket.create_connection", "os.open", "os.dup", "open"}
)

#: Methods whose return value is a leakable OS resource.
ACQUIRE_METHODS = frozenset({"makefile", "accept", "dup"})

#: Receiver-name substrings marking a counting-semaphore token source.
TOKEN_MARKERS = ("sem", "slot", "token", "available", "permit")


def _call_dotted(call: ast.Call) -> str | None:
    """Dotted name of a call's target, if it is a plain name chain."""
    parts: list[str] = []
    node: ast.expr = call.func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _is_acquire(call: ast.Call) -> bool:
    """Does this call produce a resource the caller must release?"""
    dotted = _call_dotted(call)
    if dotted in ACQUIRE_CALLS:
        return True
    return (
        isinstance(call.func, ast.Attribute) and call.func.attr in ACQUIRE_METHODS
    )


def _token_receiver(call: ast.Call) -> str | None:
    """Dotted semaphore receiver when ``call`` is ``self.<sem>.acquire``."""
    if not isinstance(call.func, ast.Attribute) or call.func.attr != "acquire":
        return None
    dotted = _call_dotted(call)
    if dotted is None or not dotted.startswith("self."):
        return None
    receiver = dotted.rsplit(".", 1)[0]
    owner = receiver.rsplit(".", 1)[-1].lower()
    if "lock" in owner:
        return None
    if any(marker in owner for marker in TOKEN_MARKERS):
        return receiver
    return None


@register
class ResourceLeakRule(ProgramRule):
    """Sockets, fds, and semaphore tokens are released on every path."""

    name = "resource-leak"
    description = (
        "locally acquired sockets/fds must be released or handed off on all "
        "paths (risky calls need a covering try); semaphore tokens acquired "
        "without any release take a justified pragma"
    )

    def check_program(self, program: Program) -> Iterator[Finding]:
        """Audit acquisitions and semaphore tokens function by function."""
        for qualname in sorted(program.functions):
            info = program.functions[qualname]
            yield from self._check_acquisitions(info)
            yield from self._check_tokens(info)

    def _check_acquisitions(self, info: FunctionInfo) -> Iterator[Finding]:
        for acq in find_acquisitions(info.node, _is_acquire):
            facts = release_facts(info.node, acq)
            if not facts.released and not facts.escapes:
                yield from self.emit(
                    info.module,
                    acq.call,
                    f"resource {acq.name!r} acquired here is never released "
                    f"or handed off in {info.qualname} — close it in a "
                    f"finally or use a context manager",
                )
            elif facts.unguarded_risk is not None:
                risk_line = facts.unguarded_risk.lineno
                yield from self.emit(
                    info.module,
                    acq.call,
                    f"resource {acq.name!r} may leak on an exception path in "
                    f"{info.qualname}: the call at line {risk_line} can raise "
                    f"before the resource is released or stored — wrap the "
                    f"prologue in try/except and close on failure",
                )

    def _check_tokens(self, info: FunctionInfo) -> Iterator[Finding]:
        acquires: list[tuple[str, ast.Call]] = []
        releases: set[str] = set()
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Call):
                continue
            receiver = _token_receiver(node)
            if receiver is not None:
                acquires.append((receiver, node))
            dotted = _call_dotted(node)
            if (
                dotted is not None
                and dotted.endswith(".release")
                and isinstance(node.func, ast.Attribute)
            ):
                releases.add(dotted.rsplit(".", 1)[0])
        for receiver, call in acquires:
            if receiver in releases:
                continue
            yield from self.emit(
                info.module,
                call,
                f"semaphore token from {receiver}.acquire() is never "
                f"released in {info.qualname} — release it on every path, "
                f"or suppress with a pragma documenting why consuming the "
                f"token is correct",
            )


# ---------------------------------------------------------------------------
# durability-ordering
# ---------------------------------------------------------------------------

#: The module whose append/fsync discipline this rule audits.
WAL_MODULE = "repro/db/wal.py"

#: Calls that fsync the log file itself.
LOG_SYNC_CALLS = frozenset(
    {"self.sync", "self.wal_file.sync", "os.fsync", "os.fdatasync"}
)


def _append_record_kind(call: ast.Call) -> str | None:
    """``"REC_PAGE"``/``"REC_COMMIT"`` when the call appends that record."""
    dotted = _call_dotted(call)
    if dotted not in ("self._append", "_append"):
        return None
    if not call.args:
        return None
    first = call.args[0]
    if isinstance(first, ast.Name) and first.id in ("REC_PAGE", "REC_COMMIT"):
        return first.id
    if isinstance(first, ast.Attribute) and first.attr in (
        "REC_PAGE",
        "REC_COMMIT",
    ):
        return first.attr
    return None


@register
class DurabilityOrderingRule(ProgramRule):
    """WAL appends and fsyncs happen in the crash-safe order."""

    name = "durability-ordering"
    description = (
        "in db/wal.py: COMMIT appends need a following log fsync, inner-"
        "backend page writes need a following inner.sync(), and PAGE->COMMIT "
        "appends in one function need a sync between them"
    )

    def check_program(self, program: Program) -> Iterator[Finding]:
        """Check source-order append/sync events in every WAL function."""
        for module in program.modules.values():
            if module.logical_path != WAL_MODULE:
                continue
            for node in ast.walk(module.tree):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield from self._check_function(module, node)

    def _check_function(
        self, module: Module, func: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        pages: list[ast.Call] = []
        commits: list[ast.Call] = []
        log_syncs: list[int] = []
        inner_writes: list[ast.Call] = []
        inner_syncs: list[int] = []
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            kind = _append_record_kind(node)
            if kind == "REC_PAGE":
                pages.append(node)
            elif kind == "REC_COMMIT":
                commits.append(node)
            dotted = _call_dotted(node)
            if dotted in LOG_SYNC_CALLS:
                log_syncs.append(node.lineno)
            elif dotted == "self.inner.write":
                inner_writes.append(node)
            elif dotted == "self.inner.sync":
                inner_syncs.append(node.lineno)
        for commit in commits:
            if not any(line > commit.lineno for line in log_syncs):
                yield from self.emit(
                    module,
                    commit,
                    "COMMIT record appended without a following log fsync — "
                    "the fsync after the COMMIT append is the durability "
                    "point; without it a 'committed' transaction can vanish "
                    "in a crash",
                )
        for write in inner_writes:
            if not any(line > write.lineno for line in inner_syncs):
                yield from self.emit(
                    module,
                    write,
                    "page image written to the inner backend without a "
                    "following inner.sync() — a checkpoint that skips the "
                    "page-file fsync is not crash-safe",
                )
        for page in pages:
            later_commits = [c for c in commits if c.lineno > page.lineno]
            for commit in later_commits:
                if not any(
                    page.lineno < line < commit.lineno for line in log_syncs
                ):
                    yield from self.emit(
                        module,
                        commit,
                        f"COMMIT appended at line {commit.lineno} after the "
                        f"PAGE append at line {page.lineno} with no fsync "
                        f"between them — the page image may not be durable "
                        f"when the commit record claims it is",
                    )
                break


# ---------------------------------------------------------------------------
# shed-exhaustiveness
# ---------------------------------------------------------------------------

#: Shed call sites: callable name -> index of its reason argument.
SHED_SITES = {
    "SheddedError": 0,
    "shed": 0,
    "record_shed": 0,
    "shed_bulk": 0,
    "shed_response": 1,
}

#: Logical-path prefix of the modules whose shed literals are audited.
SERVE_PREFIX = "repro/serve/"


def _shed_constants(module: Module) -> dict[str, str]:
    """Top-level ``SHED_X = "literal"`` bindings in one module."""
    constants: dict[str, str] = {}
    for node in module.tree.body:
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if (
            isinstance(target, ast.Name)
            and target.id.startswith("SHED_")
            and target.id != "SHED_REASONS"
            and isinstance(node.value, ast.Constant)
            and isinstance(node.value.value, str)
        ):
            constants[target.id] = node.value.value
    return constants


def _shed_reasons_assign(module: Module) -> ast.Assign | None:
    """The top-level ``SHED_REASONS = (...)`` assignment, if present."""
    for node in module.tree.body:
        if isinstance(node, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == "SHED_REASONS"
            for t in node.targets
        ):
            return node
    return None


@register
class ShedExhaustivenessRule(ProgramRule):
    """Shed reasons used in serve/ match the documented protocol set."""

    name = "shed-exhaustiveness"
    description = (
        "SheddedError/shed/record_shed reasons across serve/ must be drawn "
        "from the protocol's SHED_REASONS, and every documented reason must "
        "be used somewhere"
    )

    def check_program(self, program: Program) -> Iterator[Finding]:
        """Compare the documented reason set against every shed site."""
        serve_modules = [
            m
            for m in program.modules.values()
            if m.logical_path.startswith(SERVE_PREFIX)
        ]
        protocol = None
        for module in sorted(serve_modules, key=lambda m: m.logical_path):
            if _shed_reasons_assign(module) is not None:
                protocol = module
                if module.logical_path == SERVE_PREFIX + "protocol.py":
                    break
        if protocol is None:
            return
        constants: dict[str, str] = {}
        for module in serve_modules:
            constants.update(_shed_constants(module))
        reasons_assign = _shed_reasons_assign(protocol)
        assert reasons_assign is not None
        documented: set[str] = set()
        value = reasons_assign.value
        if isinstance(value, (ast.Tuple, ast.List)):
            for element in value.elts:
                if isinstance(element, ast.Constant) and isinstance(
                    element.value, str
                ):
                    documented.add(element.value)
                elif isinstance(element, ast.Name) and element.id in constants:
                    documented.add(constants[element.id])
        used: set[str] = set()
        for module in sorted(serve_modules, key=lambda m: m.logical_path):
            yield from self._check_sites(module, constants, documented, used)
        for missing in sorted(documented - used):
            yield from self.emit(
                protocol,
                reasons_assign,
                f"documented shed reason {missing!r} is never raised or "
                f"recorded anywhere under {SERVE_PREFIX} — dead vocabulary "
                f"misleads clients that branch on it",
            )

    def _check_sites(
        self,
        module: Module,
        constants: dict[str, str],
        documented: set[str],
        used: set[str],
    ) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = None
            if isinstance(node.func, ast.Name):
                name = node.func.id
            elif isinstance(node.func, ast.Attribute):
                name = node.func.attr
            if name not in SHED_SITES:
                continue
            index = SHED_SITES[name]
            reason_expr: ast.expr | None = None
            if len(node.args) > index:
                reason_expr = node.args[index]
            else:
                for kw in node.keywords:
                    if kw.arg == "reason":
                        reason_expr = kw.value
            literal: str | None = None
            if isinstance(reason_expr, ast.Constant) and isinstance(
                reason_expr.value, str
            ):
                literal = reason_expr.value
            elif (
                isinstance(reason_expr, ast.Name)
                and reason_expr.id in constants
            ):
                literal = constants[reason_expr.id]
            if literal is None:
                continue  # dynamic reason (a parameter): checked at its source
            used.add(literal)
            if literal not in documented:
                yield from self.emit(
                    module,
                    node,
                    f"shed reason {literal!r} is not in the protocol's "
                    f"documented SHED_REASONS — add it to the protocol or "
                    f"use a documented reason",
                )


__all__ = [
    "ACQUIRE_CALLS",
    "ACQUIRE_METHODS",
    "BLOCKING_CALLS",
    "BLOCKING_METHODS",
    "BlockingUnderLockRule",
    "DeadlinePropagationRule",
    "DurabilityOrderingRule",
    "FAMILY_MARKERS",
    "LOG_SYNC_CALLS",
    "ResourceLeakRule",
    "SANCTIONED_BLOCKING_MODULES",
    "SERVE_PREFIX",
    "SHED_SITES",
    "ShedExhaustivenessRule",
    "TOKEN_MARKERS",
    "WAL_MODULE",
]
