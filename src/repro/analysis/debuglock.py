"""Instrumented locks: a lightweight dynamic race detector for tests.

The static side of the concurrency contract lives in
:mod:`repro.analysis.rules_locks`; this module is the dynamic side.
When the environment variable :data:`ENV_FLAG` (``REPRO_DEBUG_LOCKS``)
is set to a non-empty value other than ``0``, the lock factories
:func:`make_lock`/:func:`make_rlock` — used by every lock owner in the
concurrency layer (``LRUCache``, ``BatchMatcher``, ``BufferPool``,
``CircuitBreaker``) — hand out :class:`DebugLock` objects instead of
plain ``threading`` locks.  A :class:`DebugLock`:

- tracks its owner thread, so :func:`assert_owned` can verify the
  "caller holds the lock" contract of helper methods like
  ``BufferPool._install`` (the sites the static rule suppresses with a
  pragma are exactly the sites that call :func:`assert_owned`);
- records every *nested* acquisition into a global lock-order graph
  (edge ``A -> B`` when ``B`` is acquired while ``A`` is held) and
  raises :class:`LockOrderInversionError` **before blocking** when a
  thread tries to acquire in the reverse of a previously observed order
  — turning a potential deadlock into a deterministic test failure;
- raises :class:`UnguardedAccessError` on same-thread re-acquisition of
  a non-reentrant lock (a plain ``threading.Lock`` would deadlock).

Lock names are *type-level* (``"BufferPool._lock"``), so the order graph
aggregates across instances; with the flag unset the factories return
ordinary locks and the overhead is exactly zero.  The chaos suite runs
once under ``REPRO_DEBUG_LOCKS=1`` in CI.
"""

from __future__ import annotations

import os
import threading
from typing import Any, Iterator

ENV_FLAG = "REPRO_DEBUG_LOCKS"


class LockDisciplineError(AssertionError):
    """Base class for dynamic lock-contract violations."""


class LockOrderInversionError(LockDisciplineError):
    """Two locks were acquired in both nesting orders (deadlock risk)."""


class UnguardedAccessError(LockDisciplineError):
    """Lock-guarded state was touched without holding its lock."""


class _OrderGraph:
    """The global nested-acquisition graph shared by every DebugLock."""

    def __init__(self) -> None:
        self._mutex = threading.Lock()
        self._edges: dict[str, set[str]] = {}
        self._held = threading.local()

    def held_stack(self) -> list["DebugLock"]:
        """The locks the current thread holds, outermost first."""
        stack = getattr(self._held, "stack", None)
        if stack is None:
            stack = []
            self._held.stack = stack
        return stack

    def check_and_record(self, acquiring: "DebugLock") -> None:
        """Validate acquiring ``acquiring`` given the thread's held set.

        Records ``held -> acquiring`` edges; raises
        :class:`LockOrderInversionError` if the reverse edge exists.
        """
        held_names = [
            lock.name for lock in self.held_stack() if lock.name != acquiring.name
        ]
        if not held_names:
            return
        with self._mutex:
            reverse = self._edges.get(acquiring.name, set())
            for name in held_names:
                if name in reverse:
                    raise LockOrderInversionError(
                        f"lock-order inversion: acquiring {acquiring.name!r} "
                        f"while holding {name!r}, but the opposite order "
                        f"({acquiring.name!r} before {name!r}) was observed "
                        f"earlier; edges={self.edges()!r}"
                    )
            for name in held_names:
                self._edges.setdefault(name, set()).add(acquiring.name)

    def edges(self) -> dict[str, tuple[str, ...]]:
        """A copy of the observed order graph (for tests/diagnostics)."""
        return {name: tuple(sorted(after)) for name, after in self._edges.items()}

    def reset(self) -> None:
        """Forget every recorded edge (tests isolate themselves with this)."""
        with self._mutex:
            self._edges.clear()


_GRAPH = _OrderGraph()


class DebugLock:
    """A lock wrapper that enforces ordering and ownership at runtime.

    Drop-in for ``threading.Lock`` / ``threading.RLock`` (context
    manager, ``acquire``/``release``, ``locked``).  Always backed by an
    ``RLock`` so ownership bookkeeping is race-free; ``reentrant=False``
    restores Lock semantics by *raising* on same-thread re-acquisition
    instead of deadlocking.
    """

    def __init__(self, name: str, reentrant: bool = False) -> None:
        self.name = name
        self.reentrant = reentrant
        self._inner = threading.RLock()
        self._owner: int | None = None
        self._count = 0

    # -- ownership ----------------------------------------------------

    @property
    def owned(self) -> bool:
        """Does the current thread hold this lock?"""
        return self._owner == threading.get_ident()

    def assert_owned(self) -> None:
        """Raise :class:`UnguardedAccessError` unless held by this thread."""
        if not self.owned:
            raise UnguardedAccessError(
                f"guarded state touched without holding {self.name!r} "
                f"(owner={self._owner!r}, thread={threading.get_ident()!r})"
            )

    # -- lock protocol ------------------------------------------------

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        """Acquire, checking reentrancy and global lock order first."""
        if self.owned:
            if not self.reentrant:
                raise UnguardedAccessError(
                    f"non-reentrant lock {self.name!r} re-acquired by its "
                    f"owner thread (a plain Lock would deadlock here)"
                )
        else:
            _GRAPH.check_and_record(self)
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            if self._count == 0:
                self._owner = threading.get_ident()
                _GRAPH.held_stack().append(self)
            self._count += 1
        return acquired

    def release(self) -> None:
        """Release; ownership bookkeeping mirrors acquisition."""
        if not self.owned:
            raise UnguardedAccessError(
                f"{self.name!r} released by a thread that does not hold it"
            )
        self._count -= 1
        if self._count == 0:
            self._owner = None
            stack = _GRAPH.held_stack()
            if self in stack:
                stack.remove(self)
        self._inner.release()

    def locked(self) -> bool:
        """Is the lock currently held by any thread?"""
        return self._owner is not None

    def __enter__(self) -> "DebugLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def __repr__(self) -> str:
        state = f"owner={self._owner}" if self._owner is not None else "unlocked"
        return f"<DebugLock {self.name!r} {state}>"


def debug_locks_enabled() -> bool:
    """Is the :data:`ENV_FLAG` environment switch on right now?"""
    return os.environ.get(ENV_FLAG, "") not in ("", "0")


def make_lock(name: str) -> "threading.Lock | DebugLock":
    """A mutex for ``name``: plain ``Lock``, or instrumented under the flag.

    The flag is read at creation time: structures built while
    ``REPRO_DEBUG_LOCKS=1`` keep their instrumented locks for life.
    """
    if debug_locks_enabled():
        return DebugLock(name, reentrant=False)
    return threading.Lock()


def make_rlock(name: str) -> "threading.RLock | DebugLock":
    """Like :func:`make_lock` but reentrant (``RLock`` semantics)."""
    if debug_locks_enabled():
        return DebugLock(name, reentrant=True)
    return threading.RLock()


def assert_owned(lock: Any) -> None:
    """Assert the current thread holds ``lock`` — no-op for plain locks.

    Lock-held helper methods call this so the "caller holds the lock"
    contract that the static rule takes on faith (via pragma) is verified
    whenever the debug-lock flag is on.
    """
    if isinstance(lock, DebugLock):
        lock.assert_owned()


def lock_order_edges() -> dict[str, tuple[str, ...]]:
    """The observed global nested-acquisition graph."""
    return _GRAPH.edges()


def held_locks() -> Iterator[str]:
    """Names of the DebugLocks the current thread holds, outermost first."""
    for lock in _GRAPH.held_stack():
        yield lock.name


def reset_lock_order() -> None:
    """Clear the global order graph (test isolation)."""
    _GRAPH.reset()
