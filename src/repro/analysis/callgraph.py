"""A module-qualified call graph over the package AST.

The interprocedural rules (:mod:`repro.analysis.rules_interproc`) all ask
the same two questions the per-module rules cannot answer: *who does this
function call* and *what do those callees transitively do*.  This module
answers them statically, without importing the analysed code:

- :class:`Program` parses nothing itself — it is built over the
  :class:`~repro.analysis.framework.Module` objects the runner already
  loaded — and indexes every top-level function and method under a
  *qualified name* (``repro.serve.server.MatchServer._execute``).
- Each call site becomes a :class:`CallEdge` with per-edge provenance:
  the resolution kind (``self`` method, ``local`` module function,
  ``import``-ed name, ``annotation``-typed receiver, or ``dynamic`` when
  nothing static applies) plus the file and line it was resolved at.
  Unresolvable calls are *recorded*, not dropped — an edge to
  :data:`DYNAMIC` keeps the graph honest about its blind spots.
- :meth:`Program.reaches` propagates a transitive property: given a seed
  set of qualified names (internal functions or external dotted names
  like ``time.sleep``), it returns every function that can reach a seed
  along resolved edges, with a witness path for diagnostics.

Resolution is deliberately conservative.  A call is resolved only when a
static reading of the AST pins it down: ``self.m()`` to a method of the
enclosing class (or a base resolvable inside the program), a bare name to
a module-level function or an imported binding, a dotted chain rooted at
an import to its target, and ``obj.m()`` to ``Cls.m`` when ``obj`` is a
parameter or variable annotated with a class the program knows.
Everything else — higher-order calls, attributes of attributes,
``getattr`` — is :data:`DYNAMIC`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.analysis.framework import Module

#: The callee recorded for a call site static resolution cannot pin down.
DYNAMIC = "<dynamic>"

#: Per-edge provenance kinds, in rough order of confidence.
RESOLUTION_KINDS = ("self", "local", "import", "annotation", "dynamic")


@dataclass(frozen=True)
class CallEdge:
    """One call site: caller, resolved callee, and how it was resolved."""

    caller: str
    """Qualified name of the function containing the call."""
    callee: str
    """Qualified callee name, an external dotted name, or :data:`DYNAMIC`."""
    path: str
    """Logical path of the module the call appears in."""
    line: int
    col: int
    resolution: str
    """One of :data:`RESOLUTION_KINDS` — the edge's provenance."""
    call: ast.Call = field(compare=False, hash=False, repr=False)
    """The call-site AST node (excluded from equality/hash)."""


@dataclass(frozen=True)
class FunctionInfo:
    """One indexed function or method and its declaration facts."""

    qualname: str
    module: Module = field(compare=False, hash=False, repr=False)
    node: ast.FunctionDef | ast.AsyncFunctionDef = field(
        compare=False, hash=False, repr=False
    )
    class_name: str | None
    params: tuple[str, ...]
    """Declared parameter names (positional + keyword-only), ``self``/
    ``cls`` excluded."""


@dataclass
class _ClassInfo:
    """One indexed class: its methods and (unresolved) base names."""

    qualname: str
    node: ast.ClassDef
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    base_exprs: list[ast.expr] = field(default_factory=list)


def _module_name(logical_path: str) -> str:
    """Dotted module name for a logical path (``repro/db/wal.py`` ->
    ``repro.db.wal``; a package ``__init__.py`` maps to the package)."""
    name = logical_path
    if name.endswith(".py"):
        name = name[: -len(".py")]
    if name.endswith("/__init__"):
        name = name[: -len("/__init__")]
    return name.replace("/", ".")


def _dotted_name(expr: ast.expr) -> str | None:
    """``a.b.c`` for a pure ``Name``/``Attribute`` chain, else ``None``."""
    parts: list[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _param_names(node: ast.FunctionDef | ast.AsyncFunctionDef) -> tuple[str, ...]:
    """Positional and keyword-only parameter names, minus ``self``/``cls``."""
    args = node.args
    names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    if names and names[0] in ("self", "cls"):
        names = names[1:]
    return tuple(names)


def _annotation_names(annotation: ast.expr) -> list[str]:
    """Candidate class names mentioned by an annotation expression.

    Handles plain names, dotted names, ``X | None`` unions, subscripts
    (``list[X]`` contributes nothing useful and is skipped at the outer
    level), and string annotations (parsed recursively).
    """
    names: list[str] = []
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        try:
            parsed = ast.parse(annotation.value, mode="eval")
        except SyntaxError:
            return names
        return _annotation_names(parsed.body)
    if isinstance(annotation, ast.BinOp) and isinstance(annotation.op, ast.BitOr):
        names.extend(_annotation_names(annotation.left))
        names.extend(_annotation_names(annotation.right))
        return names
    dotted = _dotted_name(annotation)
    if dotted is not None and dotted != "None":
        names.append(dotted)
    return names


class _ModuleIndex:
    """Per-module name bindings used during call resolution."""

    def __init__(self, module: Module) -> None:
        self.module = module
        self.name = _module_name(module.logical_path)
        self.imports: dict[str, str] = {}
        self.functions: set[str] = set()
        self.classes: set[str] = set()
        for node in module.tree.body:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname is not None:
                        self.imports[alias.asname] = alias.name
                    else:
                        root = alias.name.split(".")[0]
                        self.imports[root] = root
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level:
                    prefix_parts = self.name.split(".")
                    # level 1 = current package; each extra level ascends.
                    keep = len(prefix_parts) - node.level
                    if self.module.logical_path.endswith("__init__.py"):
                        keep += 1
                    prefix = ".".join(prefix_parts[: max(keep, 0)])
                    base = f"{prefix}.{base}" if base else prefix
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    self.imports[bound] = f"{base}.{alias.name}" if base else alias.name
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.functions.add(node.name)
            elif isinstance(node, ast.ClassDef):
                self.classes.add(node.name)


class Program:
    """The whole-program view: modules, functions, classes, call edges.

    Construction is deterministic: modules are indexed sorted by logical
    path and call sites in AST (source) order, so two runs over the same
    tree produce identical edge lists — the property the JSON output
    determinism test pins down.
    """

    def __init__(self, modules: Sequence[Module]) -> None:
        self.modules: dict[str, Module] = {
            m.logical_path: m for m in sorted(modules, key=lambda m: m.logical_path)
        }
        self.functions: dict[str, FunctionInfo] = {}
        self._classes: dict[str, _ClassInfo] = {}
        self._indexes: dict[str, _ModuleIndex] = {}
        self.edges: list[CallEdge] = []
        self.edges_by_caller: dict[str, list[CallEdge]] = {}
        for module in self.modules.values():
            self._indexes[module.logical_path] = _ModuleIndex(module)
            self._index_module(module)
        for module in self.modules.values():
            self._collect_edges(module)

    # ------------------------------------------------------------------
    # Indexing
    # ------------------------------------------------------------------

    def _index_module(self, module: Module) -> None:
        mod_name = _module_name(module.logical_path)
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{mod_name}.{node.name}"
                self.functions[qualname] = FunctionInfo(
                    qualname, module, node, None, _param_names(node)
                )
            elif isinstance(node, ast.ClassDef):
                cls_qual = f"{mod_name}.{node.name}"
                info = _ClassInfo(cls_qual, node, base_exprs=list(node.bases))
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        method_qual = f"{cls_qual}.{item.name}"
                        method = FunctionInfo(
                            method_qual, module, item, node.name, _param_names(item)
                        )
                        self.functions[method_qual] = method
                        info.methods[item.name] = method
                self._classes[cls_qual] = info

    def class_names(self) -> tuple[str, ...]:
        """Qualified names of every indexed class, sorted."""
        return tuple(sorted(self._classes))

    def class_method(self, cls_qual: str, method: str) -> FunctionInfo | None:
        """Resolve ``method`` on ``cls_qual``, walking program-local bases."""
        seen: set[str] = set()
        stack = [cls_qual]
        while stack:
            current = stack.pop(0)
            if current in seen:
                continue
            seen.add(current)
            info = self._classes.get(current)
            if info is None:
                continue
            if method in info.methods:
                return info.methods[method]
            owner_index = self._index_for_class(current)
            for base in info.base_exprs:
                resolved = self._resolve_class_expr(base, owner_index)
                if resolved is not None:
                    stack.append(resolved)
        return None

    def _index_for_class(self, cls_qual: str) -> _ModuleIndex | None:
        info = self._classes.get(cls_qual)
        if info is None:
            return None
        for index in self._indexes.values():
            if f"{index.name}.{info.node.name}" == cls_qual:
                return index
        return None

    def _resolve_class_expr(
        self, expr: ast.expr, index: _ModuleIndex | None
    ) -> str | None:
        """A class qualified name for a base-class/annotation expression."""
        if index is None:
            return None
        dotted = _dotted_name(expr)
        if dotted is None:
            return None
        return self._resolve_dotted_class(dotted, index)

    def _resolve_dotted_class(self, dotted: str, index: _ModuleIndex) -> str | None:
        head, _, rest = dotted.partition(".")
        if not rest and head in index.classes:
            return f"{index.name}.{head}"
        if head in index.imports:
            target = index.imports[head]
            candidate = f"{target}.{rest}" if rest else target
            if candidate in self._classes:
                return candidate
        if dotted in self._classes:
            return dotted
        return None

    # ------------------------------------------------------------------
    # Edge collection
    # ------------------------------------------------------------------

    def _collect_edges(self, module: Module) -> None:
        index = self._indexes[module.logical_path]
        mod_name = index.name
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._collect_function(index, f"{mod_name}.{node.name}", node, None)
            elif isinstance(node, ast.ClassDef):
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        self._collect_function(
                            index,
                            f"{mod_name}.{node.name}.{item.name}",
                            item,
                            node,
                        )

    def _collect_function(
        self,
        index: _ModuleIndex,
        qualname: str,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        class_node: ast.ClassDef | None,
    ) -> None:
        annotations = self._annotated_bindings(index, func)
        edges: list[CallEdge] = []
        for call in iter_calls(func):
            callee, kind = self._resolve_call(index, call, class_node, annotations)
            edges.append(
                CallEdge(
                    caller=qualname,
                    callee=callee,
                    path=index.module.logical_path,
                    line=call.lineno,
                    col=call.col_offset,
                    resolution=kind,
                    call=call,
                )
            )
        self.edges.extend(edges)
        self.edges_by_caller[qualname] = edges

    def _annotated_bindings(
        self, index: _ModuleIndex, func: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> dict[str, str]:
        """Local names whose annotation resolves to a program class."""
        bindings: dict[str, str] = {}
        args = func.args
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            if arg.annotation is None:
                continue
            for candidate in _annotation_names(arg.annotation):
                resolved = self._resolve_dotted_class(candidate, index)
                if resolved is not None:
                    bindings[arg.arg] = resolved
                    break
        for node in ast.walk(func):
            if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                for candidate in _annotation_names(node.annotation):
                    resolved = self._resolve_dotted_class(candidate, index)
                    if resolved is not None:
                        bindings[node.target.id] = resolved
                        break
        return bindings

    def _resolve_call(
        self,
        index: _ModuleIndex,
        call: ast.Call,
        class_node: ast.ClassDef | None,
        annotations: dict[str, str],
    ) -> tuple[str, str]:
        func = call.func
        if isinstance(func, ast.Name):
            name = func.id
            if name in index.functions:
                return f"{index.name}.{name}", "local"
            if name in index.classes:
                ctor = self.class_method(f"{index.name}.{name}", "__init__")
                target = ctor.qualname if ctor else f"{index.name}.{name}"
                return target, "local"
            if name in index.imports:
                target = index.imports[name]
                if target in self._classes:
                    ctor = self.class_method(target, "__init__")
                    return (ctor.qualname if ctor else target), "import"
                return target, "import"
            return DYNAMIC, "dynamic"
        if isinstance(func, ast.Attribute):
            receiver = func.value
            # self.m() / cls.m(): a method of the enclosing class (or a
            # program-resolvable base).
            if (
                isinstance(receiver, ast.Name)
                and receiver.id in ("self", "cls")
                and class_node is not None
            ):
                cls_qual = f"{index.name}.{class_node.name}"
                method = self.class_method(cls_qual, func.attr)
                if method is not None:
                    return method.qualname, "self"
                return DYNAMIC, "dynamic"
            # obj.m() where obj carries a class annotation the program knows.
            if isinstance(receiver, ast.Name) and receiver.id in annotations:
                method = self.class_method(annotations[receiver.id], func.attr)
                if method is not None:
                    return method.qualname, "annotation"
                return DYNAMIC, "dynamic"
            # A dotted chain rooted at an imported/module name: resolve the
            # root through the import map and keep the rest of the chain.
            dotted = _dotted_name(func)
            if dotted is not None:
                head, _, rest = dotted.partition(".")
                if head in index.imports and rest:
                    target = f"{index.imports[head]}.{rest}"
                    # `from m import Cls` + Cls.method() -> the method.
                    owner, _, attr = target.rpartition(".")
                    if owner in self._classes:
                        method = self.class_method(owner, attr)
                        if method is not None:
                            return method.qualname, "import"
                    return target, "import"
            return DYNAMIC, "dynamic"
        return DYNAMIC, "dynamic"

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def callees(self, qualname: str) -> tuple[CallEdge, ...]:
        """The call edges out of one function, in source order."""
        return tuple(self.edges_by_caller.get(qualname, ()))

    def reaches(self, seeds: Iterable[str]) -> dict[str, tuple[str, ...]]:
        """Every function that transitively reaches a seed, with a witness.

        ``seeds`` are qualified names — internal functions or external
        dotted names edges point at (e.g. ``time.sleep``).  The result
        maps each reaching function to its witness path, a tuple of
        qualified names from that function down to the first seed hit.
        Seeds that are themselves indexed functions are included with a
        one-element witness.
        """
        seed_set = set(seeds)
        # Reverse adjacency over resolved edges only.
        reverse: dict[str, list[str]] = {}
        for edge in self.edges:
            if edge.callee == DYNAMIC:
                continue
            reverse.setdefault(edge.callee, []).append(edge.caller)
        witness: dict[str, tuple[str, ...]] = {}
        frontier: list[str] = []
        for seed in sorted(seed_set):
            if seed in self.functions:
                witness[seed] = (seed,)
            frontier.append(seed)
        paths: dict[str, tuple[str, ...]] = {s: (s,) for s in sorted(seed_set)}
        while frontier:
            current = frontier.pop(0)
            for caller in sorted(set(reverse.get(current, ()))):
                if caller in paths:
                    continue
                paths[caller] = (caller,) + paths[current]
                if caller in self.functions:
                    witness[caller] = paths[caller]
                frontier.append(caller)
        return witness

    def import_map(self, logical_path: str) -> dict[str, str]:
        """The import bindings (name -> dotted target) of one module."""
        index = self._indexes.get(logical_path)
        return dict(index.imports) if index is not None else {}

    def resolve_in(
        self, module: Module, call: ast.Call, class_node: ast.ClassDef | None = None
    ) -> tuple[str, str]:
        """Resolve one call node in ``module``'s namespace (rule helper)."""
        index = self._indexes.get(module.logical_path)
        if index is None:
            return DYNAMIC, "dynamic"
        return self._resolve_call(index, call, class_node, {})


def iter_calls(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> list[ast.Call]:
    """Call nodes in ``func`` in source order, excluding nested defs.

    Calls inside nested functions and lambdas run at *their* call time,
    not the enclosing function's, so attributing them to the enclosing
    function would fabricate edges (and false lock-region findings).
    """
    calls: list[ast.Call] = []

    def visit(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            if isinstance(child, ast.Call):
                calls.append(child)
            visit(child)

    for statement in func.body:
        if isinstance(statement, ast.Call):
            calls.append(statement)
        visit(statement)
    calls.sort(key=lambda c: (c.lineno, c.col_offset))
    return calls


__all__ = [
    "CallEdge",
    "DYNAMIC",
    "FunctionInfo",
    "Program",
    "RESOLUTION_KINDS",
    "iter_calls",
]
