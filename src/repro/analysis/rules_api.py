"""Public-API consistency rules: ``__all__``, docstrings, re-exports.

The package's public surface is declared twice — in each module's
``__all__`` and in its docstrings — and drift between them is the kind
of rot generic tools never see.  Two rules:

- **api-consistency** — every name in ``__all__`` must actually be
  defined or imported at module top level, must not be private
  (underscore-prefixed), and conversely every *public* top-level class
  or function defined in a module that declares ``__all__`` must be
  listed there.  Modules, public classes, and public functions must
  carry docstrings (the static mirror of ``tests/test_docstrings.py``,
  which also covers fixtures that are never imported).
- **unused-import** — a top-level import whose name is never referenced
  in the module body and not re-exported via ``__all__`` is dead weight;
  in package ``__init__`` modules every import *must* appear in
  ``__all__`` (they exist only to re-export).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.framework import Finding, Module, Rule, register


def _declared_all(tree: ast.Module) -> tuple[ast.AST | None, list[str] | None]:
    """The ``__all__`` assignment node and its literal names, if present."""
    for node in tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__all__":
                names: list[str] = []
                if isinstance(value, (ast.List, ast.Tuple)):
                    for element in value.elts:
                        if isinstance(element, ast.Constant) and isinstance(
                            element.value, str
                        ):
                            names.append(element.value)
                return node, names
    return None, None


def _top_level_bindings(tree: ast.Module) -> dict[str, ast.AST]:
    """Every name bound at module top level (defs, imports, assignments)."""
    bindings: dict[str, ast.AST] = {}
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            bindings[node.name] = node
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                name = alias.asname or alias.name.split(".")[0]
                bindings[name] = node
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    bindings[target.id] = node
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            bindings[node.target.id] = node
        elif isinstance(node, (ast.If, ast.Try)):
            for name, sub in _top_level_bindings(
                ast.Module(body=list(ast.iter_child_nodes(node)), type_ignores=[])
            ).items():
                bindings[name] = sub
    return bindings


@register
class ApiConsistencyRule(Rule):
    """``__all__`` entries exist, public defs are exported and documented."""

    name = "api-consistency"
    description = (
        "__all__ entries must resolve, public top-level defs must be in "
        "__all__ (when declared) and carry docstrings"
    )

    def check(self, module: Module) -> Iterator[Finding]:
        """Check __all__ resolution, export coverage, and docstrings."""
        tree = module.tree
        all_node, exported = _declared_all(tree)
        bindings = _top_level_bindings(tree)
        if exported is not None and all_node is not None:
            for name in exported:
                if name.startswith("__") and name.endswith("__"):
                    continue  # dunder metadata like __version__ is conventional
                if name.startswith("_"):
                    yield from self.emit(
                        module, all_node, f"__all__ exports private name {name!r}"
                    )
                elif name not in bindings:
                    yield from self.emit(
                        module,
                        all_node,
                        f"__all__ lists {name!r} but the module never defines "
                        f"or imports it",
                    )
        if ast.get_docstring(tree) is None:
            anchor = tree.body[0] if tree.body else ast.Module(body=[], type_ignores=[])
            yield from self.emit(module, anchor, "module has no docstring")
        for node in tree.body:
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            if node.name.startswith("_"):
                continue
            kind = "class" if isinstance(node, ast.ClassDef) else "function"
            if ast.get_docstring(node) is None:
                yield from self.emit(
                    module, node, f"public {kind} {node.name!r} has no docstring"
                )
            if exported is not None and node.name not in exported:
                yield from self.emit(
                    module,
                    node,
                    f"public {kind} {node.name!r} is not listed in __all__ "
                    f"(add it or prefix with _)",
                )


@register
class UnusedImportRule(Rule):
    """Top-level imports must be used or re-exported via ``__all__``."""

    name = "unused-import"
    description = (
        "imports never referenced in the module body and not re-exported "
        "through __all__ are dead"
    )

    def check(self, module: Module) -> Iterator[Finding]:
        """Flag dead imports and un-exported package-__init__ imports."""
        tree = module.tree
        _, exported = _declared_all(tree)
        exported_names = set(exported or ())
        imports: list[tuple[str, ast.AST]] = []
        for node in tree.body:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "__future__":
                        continue
                    imports.append((alias.asname or alias.name.split(".")[0], node))
            elif isinstance(node, ast.ImportFrom):
                if node.module == "__future__":
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    imports.append((alias.asname or alias.name, node))
        if not imports:
            return
        used: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Name):
                used.add(node.id)
            elif isinstance(node, ast.Attribute):
                root: ast.expr = node
                while isinstance(root, ast.Attribute):
                    root = root.value
                if isinstance(root, ast.Name):
                    used.add(root.id)
        # names referenced in string annotations ("BatchMatcher") count
        for node in ast.walk(tree):
            if isinstance(node, ast.Constant) and isinstance(node.value, str):
                used.add(node.value.strip("'\""))
        is_package_init = module.logical_path.endswith("__init__.py")
        for name, node in imports:
            if is_package_init:
                if name not in exported_names and name not in used:
                    yield from self.emit(
                        module,
                        node,
                        f"package __init__ imports {name!r} without re-exporting "
                        f"it via __all__",
                    )
            elif name not in used and name not in exported_names:
                yield from self.emit(
                    module, node, f"import {name!r} is never used in this module"
                )
