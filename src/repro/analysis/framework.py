"""The reprolint rule framework: findings, pragmas, registry, runner.

``reprolint`` is this repository's own static-analysis layer.  Generic
linters cannot know that ``BufferPool._cache`` is guarded by
``BufferPool._lock``, that the ``db/`` layer's error contract is "raise
:class:`~repro.db.errors.DatabaseError` subclasses only", or that the
match path must stay deterministic — those invariants live in DESIGN.md
and reviewers' heads.  This framework turns them into executable rules
(see the ``rules_*`` modules) that run over the package AST via
``python -m repro.analysis``.

Architecture:

- :class:`Module` parses one file and extracts the *pragmas* that scope
  and suppress rules;
- :class:`Rule` subclasses declare a ``name`` and yield
  :class:`Finding` objects from :meth:`Rule.check`;
- the :data:`REGISTRY` maps rule names to singleton instances (populated
  by the ``@register`` decorator at import time);
- :func:`run` walks files, applies every selected rule, and returns the
  combined findings.

Pragmas (magic comments):

``# reprolint: disable=rule-a,rule-b``
    Suppress the named rules on this line.  When the comment sits on a
    ``def``/``class``/``with`` header line, the suppression covers that
    whole block — used for lock-held helper methods whose guard is the
    *caller's* ``with self._lock`` (the dynamic side is still checked by
    :mod:`repro.analysis.debuglock`).  For a decorated ``def``/``class``
    the block extends upward over the decorator lines, so findings
    anchored at a decorator are suppressed by the header pragma too.

``# reprolint: path=repro/db/something.py``
    Override the file's *logical path*, which is what rules scope on.
    This is how known-bad fixture files under ``tests/fixtures/lint/``
    opt in to path-scoped rules without living inside the package.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path, PurePosixPath
from typing import TYPE_CHECKING, Callable, Iterable, Iterator, Sequence, Type

if TYPE_CHECKING:
    from repro.analysis.callgraph import Program

_PRAGMA_RE = re.compile(r"#\s*reprolint:\s*(?P<body>[^#]*)")
_DISABLE_RE = re.compile(r"disable=(?P<rules>[\w,-]+)")
_PATH_RE = re.compile(r"path=(?P<path>\S+)")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        """``path:line:col: rule: message`` — the CLI's output format."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"


class Module:
    """One parsed source file plus its pragma state.

    ``logical_path`` is the posix-style path rules use for scoping
    (normally the path relative to the ``src`` root, e.g.
    ``repro/db/pager.py``); a ``# reprolint: path=...`` pragma near the
    top of the file overrides it.
    """

    def __init__(self, path: Path, source: str, logical_path: str) -> None:
        self.path = path
        self.source = source
        self.tree = ast.parse(source, filename=str(path))
        self.logical_path = logical_path
        # rule name -> list of (first_line, last_line) suppressed ranges
        self._disabled: dict[str, list[tuple[int, int]]] = {}
        self._scan_pragmas()

    @classmethod
    def load(cls, path: Path, root: Path | None = None) -> "Module":
        """Parse ``path``; the logical path is relative to ``root``."""
        source = path.read_text()
        try:
            relative = path.relative_to(root) if root is not None else path
        except ValueError:
            relative = path
        return cls(path, source, PurePosixPath(relative).as_posix())

    def _scan_pragmas(self) -> None:
        # header line -> (first suppressed line, last suppressed line); for
        # decorated defs/classes the span starts at the first decorator, so
        # a pragma on the `def`/`class` line covers the decorator lines too.
        block_spans: dict[int, tuple[int, int]] = {}
        for node in ast.walk(self.tree):
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.With)
            ):
                end = node.end_lineno if node.end_lineno is not None else node.lineno
                start = node.lineno
                decorators = getattr(node, "decorator_list", [])
                if decorators:
                    start = min(start, min(d.lineno for d in decorators))
                prior = block_spans.get(node.lineno, (node.lineno, node.lineno))
                block_spans[node.lineno] = (min(start, prior[0]), max(end, prior[1]))
        for lineno, text in enumerate(self.source.splitlines(), start=1):
            pragma = _PRAGMA_RE.search(text)
            if pragma is None:
                continue
            body = pragma.group("body")
            path_match = _PATH_RE.search(body)
            if path_match is not None and lineno <= 5:
                self.logical_path = path_match.group("path")
            disable_match = _DISABLE_RE.search(body)
            if disable_match is not None:
                span = block_spans.get(lineno, (lineno, lineno))
                for rule in disable_match.group("rules").split(","):
                    self._disabled.setdefault(rule.strip(), []).append(span)

    def suppressed(self, rule: str, line: int) -> bool:
        """Is ``rule`` disabled at ``line`` by a pragma?"""
        return any(
            first <= line <= last for first, last in self._disabled.get(rule, ())
        )

    def finding(self, rule: str, node: ast.AST, message: str) -> Finding:
        """Build a :class:`Finding` for ``node`` (caller checks pragmas)."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(rule, str(self.path), line, col, message)


class Rule:
    """Base class for reprolint rules; subclasses set ``name`` and check."""

    name: str = ""
    description: str = ""

    def applies(self, module: Module) -> bool:
        """Whether this rule runs on ``module`` (scope by logical path)."""
        return True

    def check(self, module: Module) -> Iterator[Finding]:
        """Yield findings for one module."""
        raise NotImplementedError
        yield  # pragma: no cover

    def emit(
        self, module: Module, node: ast.AST, message: str
    ) -> Iterator[Finding]:
        """Yield one finding unless a pragma suppresses it."""
        finding = module.finding(self.name, node, message)
        if not module.suppressed(self.name, finding.line):
            yield finding


class ProgramRule(Rule):
    """A whole-program rule: runs once over the parsed module set.

    Per-module rules are structurally blind to invariants that span
    functions and files (a lock region calling into blocking I/O three
    frames away, a deadline parameter dropped at a module boundary).
    ``ProgramRule`` subclasses implement :meth:`check_program` against a
    :class:`~repro.analysis.callgraph.Program` — every module parsed in
    this run, plus the call graph built over them — instead of
    :meth:`Rule.check`.  Pragma suppression still goes through
    :meth:`Rule.emit` with the module the finding lands in.
    """

    def check(self, module: Module) -> Iterator[Finding]:
        """Program rules do not run per module; see :meth:`check_program`."""
        return iter(())

    def check_program(self, program: "Program") -> Iterator[Finding]:
        """Yield findings over the whole program (a ``callgraph.Program``)."""
        raise NotImplementedError
        yield  # pragma: no cover


REGISTRY: dict[str, Rule] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding one singleton instance to :data:`REGISTRY`."""
    rule = rule_cls()
    if not rule.name:
        raise ValueError(f"{rule_cls.__name__} has no rule name")
    if rule.name in REGISTRY:
        raise ValueError(f"duplicate rule name {rule.name!r}")
    REGISTRY[rule.name] = rule
    return rule_cls


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Expand files/directories into a sorted stream of ``*.py`` files."""
    seen: set[Path] = set()
    for path in paths:
        candidates: Iterable[Path]
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            if candidate not in seen:
                seen.add(candidate)
                yield candidate


def _guess_root(path: Path) -> Path | None:
    """The directory whose ``repro`` ancestor makes logical paths package
    relative (``.../src/repro/db/pager.py`` -> root ``.../src``)."""
    for parent in path.parents:
        if parent.name == "repro":
            return parent.parent
    return None


#: Exceptions a source file can raise at parse time: plain syntax errors,
#: null bytes (``ValueError``), undecodable bytes, and unreadable files.
PARSE_ERRORS = (SyntaxError, ValueError, UnicodeDecodeError, OSError)


def run(
    paths: Sequence[Path],
    select: Sequence[str] | None = None,
    on_error: Callable[[Path, Exception], None] | None = None,
) -> list[Finding]:
    """Run the selected rules (default: all) over ``paths``.

    Returns all findings sorted by location.  Per-module rules run as
    each file parses; whole-program rules (:class:`ProgramRule`) run once
    at the end over a :class:`~repro.analysis.callgraph.Program` built
    from every module that parsed.  Unparseable files are reported
    through ``on_error`` (or re-raised when it is ``None``) and excluded
    from the program.
    """
    if select is None:
        rules = list(REGISTRY.values())
    else:
        unknown = [name for name in select if name not in REGISTRY]
        if unknown:
            raise KeyError(f"unknown rule(s): {', '.join(unknown)}")
        rules = [REGISTRY[name] for name in select]
    module_rules = [r for r in rules if not isinstance(r, ProgramRule)]
    program_rules = [r for r in rules if isinstance(r, ProgramRule)]
    findings: list[Finding] = []
    modules: list[Module] = []
    for path in iter_python_files(paths):
        try:
            module = Module.load(path, root=_guess_root(path))
        except PARSE_ERRORS as exc:
            if on_error is None:
                raise
            on_error(path, exc)
            continue
        modules.append(module)
        for rule in module_rules:
            if rule.applies(module):
                findings.extend(rule.check(module))
    if program_rules and modules:
        # Imported here: callgraph depends on this module's Module class.
        from repro.analysis.callgraph import Program

        program = Program(modules)
        for rule in program_rules:
            findings.extend(rule.check_program(program))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings
