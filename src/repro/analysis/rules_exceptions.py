"""Exception-taxonomy rules: typed errors in ``db/``, no broad excepts.

Two related contracts from the resilience layer (PR 2):

- **db raises typed.**  The storage layer communicates failure through
  the :class:`~repro.db.errors.DatabaseError` taxonomy so callers can
  retry/fallback on *kind*, never on string matching.  Inside
  ``repro/db/`` a ``raise`` of a builtin exception type is therefore a
  finding — except ``ValueError``/``TypeError`` inside ``__init__`` or
  ``__post_init__``, which report caller bugs (bad constructor
  arguments), not database failures.
- **no broad excepts.**  ``except:``, ``except Exception`` and
  ``except BaseException`` swallow typed errors and hide corruption.
  They are banned everywhere except the sanctioned fallback sites —
  ``repro/core/resilience.py`` and ``repro/core/batch.py``, whose whole
  job is to absorb failures into flagged degraded results.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.framework import Finding, Module, Rule, register

#: builtin exception names the db layer must not raise directly
BUILTIN_EXCEPTIONS = frozenset(
    {
        "ArithmeticError",
        "AssertionError",
        "AttributeError",
        "BaseException",
        "EOFError",
        "Exception",
        "IOError",
        "IndexError",
        "KeyError",
        "LookupError",
        "OSError",
        "OverflowError",
        "RuntimeError",
        "StopIteration",
        "TypeError",
        "ValueError",
        "ZeroDivisionError",
    }
)

#: constructor-argument validation may raise these two inside __init__ /
#: __post_init__ — a caller bug, not a database failure
CONSTRUCTOR_EXEMPT = frozenset({"TypeError", "ValueError"})
CONSTRUCTOR_METHODS = frozenset({"__init__", "__post_init__", "__init_subclass__"})

#: logical paths allowed to catch broadly: the resilience fallback chain
SANCTIONED_BROAD_EXCEPT = frozenset(
    {"repro/core/resilience.py", "repro/core/batch.py"}
)

BROAD_NAMES = frozenset({"Exception", "BaseException"})


def _raised_name(node: ast.Raise) -> ast.Name | None:
    """The bare name being raised: ``raise X(...)`` or ``raise X``."""
    exc = node.exc
    if isinstance(exc, ast.Call):
        exc = exc.func
    if isinstance(exc, ast.Name):
        return exc
    return None


@register
class ExceptionTaxonomyRule(Rule):
    """db/ raises DatabaseError subclasses; no bare/overbroad excepts."""

    name = "exception-taxonomy"
    description = (
        "repro/db/ may only raise DatabaseError subclasses (builtin "
        "exceptions only for constructor validation); bare/broad excepts "
        "are confined to the sanctioned resilience fallback sites"
    )

    def check(self, module: Module) -> Iterator[Finding]:
        """Run the broad-except scan and, under repro/db/, the raise scan."""
        yield from self._check_broad_excepts(module)
        if module.logical_path.startswith("repro/db/"):
            yield from self._check_db_raises(module)

    def _check_broad_excepts(self, module: Module) -> Iterator[Finding]:
        if module.logical_path in SANCTIONED_BROAD_EXCEPT:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield from self.emit(
                    module,
                    node,
                    "bare `except:` swallows typed DatabaseErrors; catch the "
                    "narrowest exception type instead",
                )
                continue
            caught = node.type.elts if isinstance(node.type, ast.Tuple) else [node.type]
            for expr in caught:
                if isinstance(expr, ast.Name) and expr.id in BROAD_NAMES:
                    yield from self.emit(
                        module,
                        node,
                        f"`except {expr.id}` outside the sanctioned resilience "
                        f"fallback sites ({', '.join(sorted(SANCTIONED_BROAD_EXCEPT))}); "
                        f"catch the narrowest typed exception instead",
                    )

    def _check_db_raises(self, module: Module) -> Iterator[Finding]:
        functions = {
            id(child): parent.name
            for parent in ast.walk(module.tree)
            if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef))
            for child in ast.walk(parent)
        }
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Raise):
                continue
            raised = _raised_name(node)
            if raised is None or raised.id not in BUILTIN_EXCEPTIONS:
                continue
            enclosing = functions.get(id(node), "")
            if raised.id in CONSTRUCTOR_EXEMPT and enclosing in CONSTRUCTOR_METHODS:
                continue
            yield from self.emit(
                module,
                node,
                f"the db layer raises `{raised.id}`; raise a typed "
                f"DatabaseError subclass from repro.db.errors instead",
            )
