"""CLI for reprolint: ``python -m repro.analysis [paths...]``.

Exit status is 0 when every selected rule is clean over every target,
1 when there are findings, 2 on usage errors (unknown rule, missing
path, unparseable file).  Output is one ``path:line:col: rule: message``
line per finding — the same shape as compiler diagnostics, so editors
and CI annotate it for free.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.analysis import REGISTRY, run


def _default_target() -> Path:
    """The installed package directory (``src/repro`` in a checkout)."""
    return Path(__file__).resolve().parent.parent


def build_parser() -> argparse.ArgumentParser:
    """Construct the reprolint argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Project-specific static analysis for the repro package.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule names to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Run reprolint; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.list_rules:
        width = max(len(name) for name in REGISTRY)
        for name in sorted(REGISTRY):
            print(f"{name:<{width}}  {REGISTRY[name].description}")
        return 0
    targets = [Path(p) for p in args.paths] if args.paths else [_default_target()]
    missing = [str(p) for p in targets if not p.exists()]
    if missing:
        print(f"error: no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2
    select = None
    if args.select:
        select = [name.strip() for name in args.select.split(",") if name.strip()]
    parse_errors: list[str] = []

    def record_parse_error(path: Path, exc: SyntaxError) -> None:
        parse_errors.append(f"{path}:{exc.lineno or 0}:0: parse-error: {exc.msg}")

    try:
        findings = run(targets, select=select, on_error=record_parse_error)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    for line in parse_errors:
        print(line)
    for finding in findings:
        print(finding.render())
    if parse_errors:
        return 2
    if findings:
        print(
            f"\nreprolint: {len(findings)} finding(s) across "
            f"{len({f.path for f in findings})} file(s)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
