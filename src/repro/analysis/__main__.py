"""CLI for reprolint: ``python -m repro.analysis [paths...]``.

Exit status is 0 when every selected rule is clean over every target,
1 when there are findings, 2 on usage errors or unparseable files.
Three output formats:

- ``--format text`` (default) — one ``path:line:col: rule: message``
  line per finding, the same shape as compiler diagnostics, so editors
  and CI annotate it for free.
- ``--format json`` — a deterministic JSON document (sorted findings,
  sorted keys, stable separators): byte-identical across runs over the
  same tree, which is what the determinism test pins down.
- ``--format sarif`` — minimal SARIF 2.1.0 for GitHub code-scanning
  upload.

Files that fail to parse are reported as rule ``syntax-error`` findings
(all formats) and force exit code 2 — a tree the linter cannot read is
not a clean tree.

Baselines gate CI on *new* findings only: ``--write-baseline FILE``
records the current findings' fingerprints; ``--baseline FILE`` filters
findings whose fingerprint is recorded, so legacy debt does not fail the
build while anything fresh does.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from pathlib import Path
from typing import Sequence

from repro.analysis import REGISTRY, run
from repro.analysis.framework import Finding

#: The pseudo-rule used for files the parser rejects.
SYNTAX_ERROR_RULE = "syntax-error"

SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

BASELINE_VERSION = 1


def _default_target() -> Path:
    """The installed package directory (``src/repro`` in a checkout)."""
    return Path(__file__).resolve().parent.parent


def build_parser() -> argparse.ArgumentParser:
    """Construct the reprolint argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Project-specific static analysis for the repro package.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule names to run (default: all)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        dest="output_format",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="suppress findings whose fingerprints appear in this baseline",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="write the current findings as a baseline file and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    return parser


def _display_path(raw: str) -> str:
    """``raw`` relative to the working directory when possible (posix).

    Keeps output and baselines stable across checkouts: the default
    target is an absolute path, but CI fingerprints must not depend on
    where the runner cloned the repo.
    """
    path = Path(raw)
    try:
        return path.resolve().relative_to(Path.cwd()).as_posix()
    except ValueError:
        return path.as_posix()


def _fingerprint(finding: Finding) -> str:
    """The baseline identity of a finding (line numbers excluded, so
    unrelated edits moving code do not invalidate the baseline)."""
    return f"{finding.rule}::{finding.path}::{finding.message}"


def _load_baseline(path: Path) -> set[str]:
    """The fingerprints recorded in a baseline file."""
    payload = json.loads(path.read_text())
    if not isinstance(payload, dict) or "findings" not in payload:
        raise ValueError(f"{path} is not a reprolint baseline file")
    fingerprints: set[str] = set()
    for entry in payload["findings"]:
        fingerprints.add(
            f"{entry['rule']}::{entry['path']}::{entry['message']}"
        )
    return fingerprints


def _baseline_document(findings: Sequence[Finding]) -> str:
    """A deterministic baseline JSON document for ``findings``."""
    entries = sorted(
        (
            {"rule": f.rule, "path": f.path, "message": f.message}
            for f in findings
        ),
        key=lambda e: (e["path"], e["rule"], e["message"]),
    )
    return (
        json.dumps(
            {"version": BASELINE_VERSION, "findings": entries},
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )


def _json_document(findings: Sequence[Finding]) -> str:
    """The ``--format json`` document — byte-identical across runs."""
    return (
        json.dumps(
            {
                "findings": [dataclasses.asdict(f) for f in findings],
                "count": len(findings),
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )


def _sarif_document(findings: Sequence[Finding]) -> str:
    """A minimal SARIF 2.1.0 document for code-scanning upload."""
    rule_ids = sorted({f.rule for f in findings})
    rules = []
    for rule_id in rule_ids:
        registered = REGISTRY.get(rule_id)
        description = (
            registered.description
            if registered is not None
            else "file failed to parse"
        )
        rules.append(
            {
                "id": rule_id,
                "shortDescription": {"text": description or rule_id},
            }
        )
    results = [
        {
            "ruleId": f.rule,
            "level": "error",
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": f.path},
                        "region": {
                            "startLine": max(f.line, 1),
                            "startColumn": f.col + 1,
                        },
                    }
                }
            ],
        }
        for f in findings
    ]
    document = {
        "$schema": SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "reprolint",
                        "informationUri": (
                            "https://example.invalid/repro/analysis"
                        ),
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


def main(argv: Sequence[str] | None = None) -> int:
    """Run reprolint; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.list_rules:
        width = max(len(name) for name in REGISTRY)
        for name in sorted(REGISTRY):
            print(f"{name:<{width}}  {REGISTRY[name].description}")
        return 0
    targets = [Path(p) for p in args.paths] if args.paths else [_default_target()]
    missing = [str(p) for p in targets if not p.exists()]
    if missing:
        print(f"error: no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2
    select = None
    if args.select:
        select = [name.strip() for name in args.select.split(",") if name.strip()]
    syntax_errors: list[Finding] = []

    def record_parse_error(path: Path, exc: Exception) -> None:
        line = getattr(exc, "lineno", None) or 0
        message = getattr(exc, "msg", None) or str(exc)
        syntax_errors.append(
            Finding(SYNTAX_ERROR_RULE, str(path), line, 0, message)
        )

    try:
        findings = run(targets, select=select, on_error=record_parse_error)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    findings = syntax_errors + findings
    findings = [
        dataclasses.replace(f, path=_display_path(f.path)) for f in findings
    ]
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))

    if args.write_baseline:
        Path(args.write_baseline).write_text(_baseline_document(findings))
        print(
            f"wrote baseline with {len(findings)} finding(s) to "
            f"{args.write_baseline}",
            file=sys.stderr,
        )
        return 0

    if args.baseline:
        baseline_path = Path(args.baseline)
        if not baseline_path.exists():
            print(f"error: no such baseline: {baseline_path}", file=sys.stderr)
            return 2
        try:
            known = _load_baseline(baseline_path)
        except (ValueError, KeyError, json.JSONDecodeError) as exc:
            print(f"error: bad baseline {baseline_path}: {exc}", file=sys.stderr)
            return 2
        findings = [f for f in findings if _fingerprint(f) not in known]

    if args.output_format == "json":
        sys.stdout.write(_json_document(findings))
    elif args.output_format == "sarif":
        sys.stdout.write(_sarif_document(findings))
    else:
        for finding in findings:
            print(finding.render())
        if findings:
            print(
                f"\nreprolint: {len(findings)} finding(s) across "
                f"{len({f.path for f in findings})} file(s)",
                file=sys.stderr,
            )
    if any(f.rule == SYNTAX_ERROR_RULE for f in findings):
        return 2
    if findings:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
