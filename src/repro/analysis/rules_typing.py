"""Annotation-coverage rule: the strict-typing backstop.

``mypy --strict`` (configured in ``pyproject.toml``, run in CI) is the
real type gate, but it needs full annotations to have anything to check
— a single untyped ``def`` silently downgrades every call through it to
``Any``.  This rule enforces the *coverage* half locally and
dependency-free: every function and method in ``src/repro`` must
annotate all of its parameters (``self``/``cls`` excepted, ``*args`` /
``**kwargs`` included) and its return type — including ``__init__ ->
None``, exactly as strict mypy demands.  Lambdas are exempt (they cannot
be annotated).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.framework import Finding, Module, Rule, register

_IMPLICIT_FIRST = frozenset({"self", "cls"})


@register
class AnnotationsRule(Rule):
    """Every def annotates all parameters and its return type."""

    name = "annotations"
    description = (
        "functions must carry full parameter and return annotations "
        "(mypy --strict coverage, checked without mypy installed)"
    )

    def applies(self, module: Module) -> bool:
        """Annotation coverage applies to the whole repro package."""
        return module.logical_path.startswith("repro/")

    def check(self, module: Module) -> Iterator[Finding]:
        """Audit every def for parameter and return annotations."""
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(module, node)

    def _check_function(
        self, module: Module, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        args = node.args
        positional = args.posonlyargs + args.args
        missing: list[str] = []
        for index, arg in enumerate(positional):
            if index == 0 and arg.arg in _IMPLICIT_FIRST:
                continue
            if arg.annotation is None:
                missing.append(arg.arg)
        missing.extend(
            arg.arg for arg in args.kwonlyargs if arg.annotation is None
        )
        if args.vararg is not None and args.vararg.annotation is None:
            missing.append(f"*{args.vararg.arg}")
        if args.kwarg is not None and args.kwarg.annotation is None:
            missing.append(f"**{args.kwarg.arg}")
        if missing:
            yield from self.emit(
                module,
                node,
                f"{node.name}() is missing parameter annotations for: "
                f"{', '.join(missing)}",
            )
        if node.returns is None:
            yield from self.emit(
                module,
                node,
                f"{node.name}() is missing a return annotation "
                f"(use `-> None` for procedures and __init__)",
            )
