"""Determinism rule: the match path computes the same answer every run.

The parity guarantees the batch engine and the chaos suite rely on —
"bit-identical to the sequential run", "identical to the clean run" —
only hold because fuzzy-match scoring is a pure function of its inputs.
This rule guards the modules on that path (``core/fms*.py``,
``core/kernels.py``, ``core/osc.py``, and all of ``eti/``), plus the
observability plane (all of ``obs/`` — metric bucket edges and snapshot
merges must be reproducible, and its only clock is the injected one),
against the three classic ways Python code goes nondeterministic:

- **unseeded randomness** — any ``random.*`` call except constructing an
  explicitly seeded ``random.Random(seed)``;
- **wall-clock reads** — ``time.time``/``time.monotonic``/
  ``datetime.now``/``datetime.utcnow`` (``time.perf_counter`` is allowed:
  it feeds timing *stats*, never answers);
- **set-order iteration** — ``for``/comprehension iteration directly
  over a set literal, ``set(...)``/``frozenset(...)`` call, or set
  comprehension, whose order varies with hash seeding.  Wrap in
  ``sorted(...)`` to fix the order.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.analysis.framework import Finding, Module, Rule, register

_SCOPE_RE = re.compile(
    r"^repro/(core/fms[^/]*\.py|core/kernels\.py|core/osc\.py|eti/|obs/)"
)

CLOCK_ATTRIBUTES = frozenset(
    {
        ("time", "time"),
        ("time", "monotonic"),
        ("time", "time_ns"),
        ("time", "monotonic_ns"),
        ("datetime", "now"),
        ("datetime", "utcnow"),
        ("date", "today"),
    }
)


def _dotted(node: ast.AST) -> tuple[str, str] | None:
    """``(base, attr)`` for an ``X.Y`` attribute access, else ``None``."""
    if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
        return (node.value.id, node.attr)
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Attribute)
        and isinstance(node.value.value, ast.Name)
    ):
        # datetime.datetime.now -> ("datetime", "now")
        return (node.value.attr, node.attr)
    return None


def _is_set_expression(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


@register
class DeterminismRule(Rule):
    """No unseeded randomness, clock reads, or set-order iteration."""

    name = "determinism"
    description = (
        "the match path (core/fms*.py, core/osc.py, eti/) must stay "
        "deterministic: no unseeded random, wall clocks, or set iteration"
    )

    def applies(self, module: Module) -> bool:
        """Only the deterministic match-path modules are in scope."""
        return _SCOPE_RE.match(module.logical_path) is not None

    def check(self, module: Module) -> Iterator[Finding]:
        """Flag randomness, clock reads, and set-order iteration."""
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(module, node)
            elif isinstance(node, ast.For):
                yield from self._check_iteration(module, node.iter, "for loop")
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                for generator in node.generators:
                    yield from self._check_iteration(
                        module, generator.iter, "comprehension"
                    )

    def _check_call(self, module: Module, node: ast.Call) -> Iterator[Finding]:
        dotted = _dotted(node.func)
        if dotted is None:
            return
        base, attr = dotted
        if base == "random":
            if attr == "Random" and node.args:
                return  # explicitly seeded generator: deterministic
            yield from self.emit(
                module,
                node,
                f"`random.{attr}(...)` on the match path is nondeterministic; "
                f"use an explicitly seeded `random.Random(seed)`",
            )
        elif dotted in CLOCK_ATTRIBUTES:
            yield from self.emit(
                module,
                node,
                f"`{base}.{attr}()` reads the wall clock on the match path; "
                f"answers must not depend on time (perf_counter for stats "
                f"is fine)",
            )

    def _check_iteration(
        self, module: Module, iterable: ast.expr, where: str
    ) -> Iterator[Finding]:
        if _is_set_expression(iterable):
            yield from self.emit(
                module,
                iterable,
                f"{where} iterates a set directly; set order varies with "
                f"hash seeding — wrap in sorted(...) to pin the order",
            )
