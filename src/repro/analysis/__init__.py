"""reprolint: project-specific static analysis and a dynamic lock checker.

Run the linter over the package (exit 0 = clean, 1 = findings)::

    python -m repro.analysis                # lints src/repro
    python -m repro.analysis path.py dir/   # explicit targets
    python -m repro.analysis --select lock-discipline,annotations
    python -m repro.analysis --list-rules

Per-module rules (see each ``rules_*`` module for the rationale):

===================  ====================================================
``lock-discipline``  attributes mutated under ``with self._lock`` are
                     only touched under it
``exception-taxonomy``  ``repro/db/`` raises only ``DatabaseError``
                     subclasses; no bare/broad excepts outside the
                     sanctioned resilience fallback sites
``determinism``      no unseeded randomness, wall-clock reads, or
                     set-order iteration on the match path
``api-consistency``  ``__all__`` entries resolve; public defs are
                     exported and documented
``unused-import``    imports are referenced or re-exported
``annotations``      full parameter/return annotations everywhere
                     (the local strict-typing backstop)
===================  ====================================================

Whole-program rules (reprolint v2 — built on the call graph in
:mod:`repro.analysis.callgraph`; see :mod:`repro.analysis.rules_interproc`):

=========================  ==============================================
``blocking-under-lock``    no call under ``with self.<lock>:`` may
                           transitively reach blocking I/O
``deadline-propagation``   deadline/timeout/budget parameters flow into
                           every callee that accepts one
``resource-leak``          sockets/fds released or handed off on all
                           paths; semaphore tokens never silently dropped
``durability-ordering``    ``db/wal.py`` append/fsync discipline (COMMIT
                           then fsync; checkpoint writes then inner sync)
``shed-exhaustiveness``    shed reasons across ``serve/`` match the
                           protocol's documented ``SHED_REASONS``
=========================  ==============================================

The dynamic half — :class:`~repro.analysis.debuglock.DebugLock`, enabled
by ``REPRO_DEBUG_LOCKS=1`` — lives in :mod:`repro.analysis.debuglock`.
"""

from repro.analysis.debuglock import (
    DebugLock,
    LockDisciplineError,
    LockOrderInversionError,
    UnguardedAccessError,
    assert_owned,
    debug_locks_enabled,
    lock_order_edges,
    make_lock,
    make_rlock,
    reset_lock_order,
)
from repro.analysis.framework import REGISTRY, Finding, Module, Rule, register, run

# Importing the rule modules populates REGISTRY via their @register
# decorators; the imports are for that side effect.
from repro.analysis import rules_api as _rules_api
from repro.analysis import rules_determinism as _rules_determinism
from repro.analysis import rules_exceptions as _rules_exceptions
from repro.analysis import rules_interproc as _rules_interproc
from repro.analysis import rules_locks as _rules_locks
from repro.analysis import rules_typing as _rules_typing

_ = (
    _rules_api,
    _rules_determinism,
    _rules_exceptions,
    _rules_interproc,
    _rules_locks,
    _rules_typing,
)

__all__ = [
    "DebugLock",
    "Finding",
    "LockDisciplineError",
    "LockOrderInversionError",
    "Module",
    "REGISTRY",
    "Rule",
    "UnguardedAccessError",
    "assert_owned",
    "debug_locks_enabled",
    "lock_order_edges",
    "make_lock",
    "make_rlock",
    "register",
    "reset_lock_order",
    "run",
]
