"""Lock-discipline rule: guarded attributes stay under their lock.

The concurrency layer (PR 1–2) follows one convention: a class that owns
a ``self._lock`` (or ``self._workers_lock``, …) mutates its shared state
only inside ``with self.<lock>:`` blocks.  This rule makes the
convention checkable:

1. **Infer the guarded set.**  For each class, any ``self.X`` that is
   *assigned* inside a ``with self.<lock>:`` block — attribute
   assignment, augmented assignment, subscript store (``self.X[k] = v``),
   or a known mutating method call (``self.X.append(...)``) — is a
   guarded attribute.  ``__init__`` is construction-time and exempt.
2. **Check every access.**  Outside ``__init__``, any read or write of a
   guarded attribute that is not inside a ``with self.<lock>:`` block is
   a finding.

Helper methods whose contract is "caller holds the lock" (e.g.
``BufferPool._install``) carry a ``# reprolint: disable=lock-discipline``
pragma on their ``def`` line; the dynamic side of that contract is
enforced at test time by :func:`repro.analysis.debuglock.assert_owned`.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.framework import Finding, Module, Rule, register

#: method names treated as mutations of their receiver
MUTATOR_METHODS = frozenset(
    {
        "append",
        "add",
        "clear",
        "discard",
        "extend",
        "insert",
        "move_to_end",
        "pop",
        "popitem",
        "remove",
        "setdefault",
        "update",
    }
)


def _self_attr(node: ast.AST) -> str | None:
    """``X`` when ``node`` is exactly ``self.X``, else ``None``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _is_lock_name(attr: str) -> bool:
    return "lock" in attr.lower()


def _lock_with_items(node: ast.With) -> bool:
    """Does this ``with`` acquire a ``self.<...lock...>`` attribute?"""
    for item in node.items:
        attr = _self_attr(item.context_expr)
        if attr is not None and _is_lock_name(attr):
            return True
    return False


class _AccessCollector(ast.NodeVisitor):
    """Record ``self.X`` stores and loads, tagged with lock context."""

    def __init__(self) -> None:
        self.depth = 0
        # (attr, node, under_lock, is_store)
        self.accesses: list[tuple[str, ast.AST, bool, bool]] = []

    def visit_With(self, node: ast.With) -> None:
        if _lock_with_items(node):
            for item in node.items:
                self.visit(item)
            self.depth += 1
            for statement in node.body:
                self.visit(statement)
            self.depth -= 1
        else:
            self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        attr = _self_attr(node)
        if attr is not None:
            is_store = isinstance(node.ctx, (ast.Store, ast.Del))
            self.accesses.append((attr, node, self.depth > 0, is_store))
        self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        # self.X[k] = v stores *into* X even though self.X itself is a Load
        attr = _self_attr(node.value)
        if attr is not None and isinstance(node.ctx, (ast.Store, ast.Del)):
            self.accesses.append((attr, node, self.depth > 0, True))
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Attribute):
            receiver = _self_attr(node.func.value)
            if receiver is not None and node.func.attr in MUTATOR_METHODS:
                self.accesses.append((receiver, node, self.depth > 0, True))
        self.generic_visit(node)


@register
class LockDisciplineRule(Rule):
    """Attributes assigned under ``self._lock`` are only touched under it."""

    name = "lock-discipline"
    description = (
        "attributes mutated inside `with self._lock` must never be read or "
        "written outside it (outside __init__)"
    )

    def check(self, module: Module) -> Iterator[Finding]:
        """Infer each class's guarded attributes and audit every access."""
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(module, node)

    def _check_class(
        self, module: Module, class_node: ast.ClassDef
    ) -> Iterator[Finding]:
        methods = [
            item
            for item in class_node.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        collected: list[tuple[ast.AST, _AccessCollector]] = []
        guarded: set[str] = set()
        for method in methods:
            collector = _AccessCollector()
            for statement in method.body:
                collector.visit(statement)
            if method.name != "__init__":
                for attr, _, under_lock, is_store in collector.accesses:
                    if under_lock and is_store and not _is_lock_name(attr):
                        guarded.add(attr)
                collected.append((method, collector))
        if not guarded:
            return
        for method, collector in collected:
            reported: set[tuple[str, int]] = set()
            for attr, node, under_lock, _ in collector.accesses:
                if attr not in guarded or under_lock:
                    continue
                line = getattr(node, "lineno", 1)
                if (attr, line) in reported:
                    continue
                reported.add((attr, line))
                yield from self.emit(
                    module,
                    node,
                    f"{class_node.name}.{attr} is lock-guarded (mutated under "
                    f"a `with self._lock` block) but accessed without the "
                    f"lock in {method.name}()",
                )
