"""Offline fuzzy-duplicate detection over a relation.

For every tuple, candidate duplicates are retrieved with the ETI-backed
fuzzy match (K nearest above the duplicate threshold); pairs passing the
fms threshold are merged in a union-find, and each resulting cluster
elects a canonical tuple.  Because fms is asymmetric, a pair is accepted
when *either* direction clears the threshold — a tuple missing a token
should still merge with its complete version, which is exactly the
asymmetry §3.1's insertion discount encodes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.config import MatchConfig
from repro.core.fms import fms
from repro.core.matcher import FuzzyMatcher
from repro.core.minhash import MinHasher
from repro.core.reference import ReferenceTable
from repro.core.tokens import TupleTokens
from repro.core.weights import WeightFunction, build_frequency_cache
from repro.db.database import Database
from repro.eti.builder import build_eti
from repro.dedup.unionfind import UnionFind


@dataclass(frozen=True)
class DuplicateCluster:
    """One group of mutually-fuzzy-duplicate tuples."""

    canonical_tid: int
    member_tids: tuple[int, ...]

    @property
    def size(self) -> int:
        return len(self.member_tids)

    @property
    def duplicate_tids(self) -> tuple[int, ...]:
        """Members other than the canonical tuple (the ones to drop)."""
        return tuple(t for t in self.member_tids if t != self.canonical_tid)


@dataclass
class DedupReport:
    """Outcome of one deduplication pass."""

    clusters: list[DuplicateCluster] = field(default_factory=list)
    tuples_scanned: int = 0
    pairs_scored: int = 0
    elapsed_seconds: float = 0.0

    @property
    def duplicate_count(self) -> int:
        return sum(cluster.size - 1 for cluster in self.clusters)

    def duplicates_of(self) -> dict[int, int]:
        """Map every non-canonical member to its canonical tid."""
        mapping: dict[int, int] = {}
        for cluster in self.clusters:
            for tid in cluster.duplicate_tids:
                mapping[tid] = cluster.canonical_tid
        return mapping


class FuzzyDeduplicator:
    """Finds fuzzy-duplicate clusters inside one relation.

    Parameters
    ----------
    threshold:
        Minimum fms (in either direction) for a pair to count as
        duplicates.
    neighbors:
        How many nearest candidates to examine per tuple (K of the
        underlying fuzzy match queries).  Duplicate groups larger than
        ``neighbors + 1`` are still found — transitivity through the
        union-find chains overlapping neighborhoods together.
    config:
        Match configuration for the internally-built ETI; defaults to the
        paper's parameters.
    """

    def __init__(
        self,
        threshold: float = 0.85,
        neighbors: int = 5,
        config: MatchConfig | None = None,
    ) -> None:
        if not 0.0 < threshold <= 1.0:
            raise ValueError("threshold must be in (0, 1]")
        if neighbors < 1:
            raise ValueError("neighbors must be at least 1")
        self.threshold = threshold
        self.neighbors = neighbors
        self.config = config if config is not None else MatchConfig()

    def deduplicate(self, reference: ReferenceTable, db: Database) -> DedupReport:
        """Cluster fuzzy duplicates in ``reference``.

        ``db`` is the database that owns the relation; a temporary ETI
        (named ``<relation>_dedup_eti``) is built in it and dropped
        afterwards.
        """
        started = time.perf_counter()
        report = DedupReport()
        weights = build_frequency_cache(
            reference.scan_values(), reference.num_columns
        )
        hasher = MinHasher(self.config.q, self.config.signature_size, self.config.seed)
        eti_name = f"{reference.name}_dedup_eti"
        eti, _ = build_eti(db, reference, self.config, hasher=hasher, eti_name=eti_name)
        matcher = FuzzyMatcher(reference, weights, self.config, eti, hasher)

        union = UnionFind()
        tokenized: dict[int, TupleTokens] = {}
        try:
            for tid, values in reference.scan():
                report.tuples_scanned += 1
                union.add(tid)
                tokenized[tid] = TupleTokens.from_values(values)
                result = matcher.match(
                    values,
                    k=self.neighbors + 1,  # self comes back at similarity 1.0
                    min_similarity=0.0,
                )
                for match in result.matches:
                    if match.tid == tid or union.connected(tid, match.tid):
                        continue
                    report.pairs_scored += 1
                    if self._is_duplicate_pair(
                        tid, values, match.tid, match.values, match.similarity,
                        weights, tokenized,
                    ):
                        union.union(tid, match.tid)
        finally:
            db.drop_relation(eti_name)

        report.clusters = self._build_clusters(union, weights, tokenized)
        report.elapsed_seconds = time.perf_counter() - started
        return report

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _is_duplicate_pair(
        self,
        tid_u: int,
        values_u: Sequence[str | None],
        tid_v: int,
        values_v: Sequence[str | None],
        similarity_uv: float,
        weights: WeightFunction,
        tokenized: dict[int, TupleTokens],
    ) -> bool:
        if similarity_uv >= self.threshold:
            return True
        # fms is asymmetric: check the reverse direction too.
        tokens_v = tokenized.get(tid_v)
        if tokens_v is None:
            tokens_v = TupleTokens.from_values(values_v)
            tokenized[tid_v] = tokens_v
        reverse = fms(tokens_v, tokenized[tid_u], weights, self.config)
        return reverse >= self.threshold

    def _build_clusters(
        self,
        union: UnionFind,
        weights: WeightFunction,
        tokenized: dict[int, TupleTokens],
    ) -> list[DuplicateCluster]:
        clusters = []
        for members in union.groups().values():
            if len(members) < 2:
                continue
            canonical = max(
                members,
                key=lambda tid: (weights.tuple_weight(tokenized[tid]), -tid),
            )
            clusters.append(
                DuplicateCluster(canonical_tid=canonical, member_tids=tuple(members))
            )
        clusters.sort(key=lambda c: c.member_tids[0])
        return clusters
