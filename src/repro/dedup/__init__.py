"""Offline fuzzy-duplicate elimination.

The paper's §2 positions the fuzzy match operation as the *online*
complement to offline duplicate elimination: "A complementary use of
solutions to both problems is to first clean a relation by eliminating
fuzzy duplicates and then piping further additions through the fuzzy match
operation to prevent introduction of new fuzzy duplicates."

This subpackage supplies that offline half, built from the same machinery:

- blocking: each tuple's candidate duplicates are retrieved through the
  ETI (the same probabilistically-safe candidate generation the online
  operation uses), so the pairwise stage is near-linear instead of
  quadratic;
- pairwise scoring with fms;
- transitive clustering with a union-find structure;
- canonical-tuple selection per cluster (highest total token weight, i.e.
  the most information-rich variant survives).
"""

from repro.dedup.cluster import DedupReport, DuplicateCluster, FuzzyDeduplicator
from repro.dedup.unionfind import UnionFind

__all__ = [
    "DedupReport",
    "DuplicateCluster",
    "FuzzyDeduplicator",
    "UnionFind",
]
