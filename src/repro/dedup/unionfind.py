"""Disjoint-set (union-find) with path compression and union by size."""

from __future__ import annotations

from typing import Hashable, Iterable


class UnionFind:
    """Classic disjoint-set forest over hashable items.

    Items are added implicitly on first touch.  ``find`` uses path
    compression and ``union`` merges by size, giving effectively
    amortized-constant operations.
    """

    def __init__(self, items: Iterable[Hashable] = ()) -> None:
        self._parent: dict = {}
        self._size: dict = {}
        for item in items:
            self.add(item)

    def __len__(self) -> int:
        return len(self._parent)

    def __contains__(self, item: Hashable) -> bool:
        return item in self._parent

    def add(self, item: Hashable) -> None:
        """Register ``item`` as its own singleton set (no-op if present)."""
        if item not in self._parent:
            self._parent[item] = item
            self._size[item] = 1

    def find(self, item: Hashable) -> Hashable:
        """Return the canonical representative of ``item``'s set."""
        self.add(item)
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        # Path compression.
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a: Hashable, b: Hashable) -> Hashable:
        """Merge the sets of ``a`` and ``b``; returns the merged root."""
        root_a = self.find(a)
        root_b = self.find(b)
        if root_a == root_b:
            return root_a
        if self._size[root_a] < self._size[root_b]:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        self._size[root_a] += self._size[root_b]
        return root_a

    def connected(self, a: Hashable, b: Hashable) -> bool:
        """True iff ``a`` and ``b`` are in the same set."""
        if a not in self._parent or b not in self._parent:
            return False
        return self.find(a) == self.find(b)

    def groups(self) -> dict:
        """Map each root to the sorted list of its members."""
        result: dict = {}
        for item in self._parent:
            result.setdefault(self.find(item), []).append(item)
        for members in result.values():
            members.sort()
        return result
