"""A minimal blocking client for the serve wire protocol.

Used by ``repro ping``, the serve tests, and the serve benchmark; also
a reference implementation for anyone writing a client in another
language (the protocol is one JSON object per line in each direction).
"""

from __future__ import annotations

import json
import socket
from typing import Any, Sequence

from repro.serve.protocol import (
    PRIORITY_INTERACTIVE,
    ProtocolError,
    encode_line,
)


class ServeClient:
    """One TCP connection to a :class:`~repro.serve.server.MatchServer`.

    Not thread-safe: requests and responses are strictly paired on the
    wire, so give each thread its own client (connections are cheap and
    the server handles each on its own thread).
    """

    def __init__(
        self, host: str, port: int, timeout_s: float | None = 30.0
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout_s)
        self._reader = self._sock.makefile("rb")

    # ------------------------------------------------------------------
    # Wire plumbing
    # ------------------------------------------------------------------

    def request(self, payload: dict[str, Any]) -> dict[str, Any]:
        """Send one request object, return the decoded response object."""
        self._sock.sendall(encode_line(payload))
        raw = self._reader.readline()
        if not raw:
            raise ConnectionError("server closed the connection")
        response = json.loads(raw)
        if not isinstance(response, dict):
            raise ProtocolError("server response was not a JSON object")
        return response

    # ------------------------------------------------------------------
    # Verbs
    # ------------------------------------------------------------------

    def match(
        self,
        values: Sequence[str | None],
        request_id: str | None = None,
        k: int | None = None,
        min_similarity: float | None = None,
        strategy: str | None = None,
        deadline_ms: float | None = None,
        priority: str = PRIORITY_INTERACTIVE,
    ) -> dict[str, Any]:
        """Send one match request and return the decoded response object."""
        payload: dict[str, Any] = {
            "op": "match",
            "values": list(values),
            "priority": priority,
        }
        if request_id is not None:
            payload["id"] = request_id
        if k is not None:
            payload["k"] = k
        if min_similarity is not None:
            payload["min_similarity"] = min_similarity
        if strategy is not None:
            payload["strategy"] = strategy
        if deadline_ms is not None:
            payload["deadline_ms"] = deadline_ms
        return self.request(payload)

    def ping(self) -> dict[str, Any]:
        """Return the server's readiness payload."""
        return self.request({"op": "ping"})

    def stats(self) -> dict[str, Any]:
        """Return the server's outcome counters."""
        return self.request({"op": "stats"})

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Close the connection; safe to call twice."""
        try:
            self._reader.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


__all__ = ["ServeClient"]
