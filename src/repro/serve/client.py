"""A resilient blocking client for the serve wire protocol.

Used by ``repro ping``, the serve tests, and the serve benchmark; also
a reference implementation for anyone writing a client in another
language (the protocol is one JSON object per line in each direction).

Beyond the minimal send/receive pairing, the client carries the three
behaviours a real ingress client needs against a flaky network:

- **Per-request deadlines.**  ``timeout_s`` bounds every send *and*
  every response wait (not just the initial connect, which is all it
  used to guard); a stalled server raises the typed
  :class:`ClientTimeoutError` instead of hanging the caller forever.
- **Reconnect + retry.**  With a :class:`~repro.core.resilience
  .RetryPolicy`, connect failures, timeouts, dropped connections, and
  retryable shed responses (``queue_full`` / ``overload`` / ``loading``)
  are retried under capped exponential backoff with seeded jitter.
- **Idempotency keys.**  When retrying is on, each ``match`` request
  carries a client-generated ``idempotency_key``; the server answers a
  retransmission from its bounded response cache, so a retried request
  runs against the engine at most once.
"""

from __future__ import annotations

import json
import random
import socket
import time
import uuid
from typing import Any, Sequence

from repro.core.resilience import RetryPolicy
from repro.serve.protocol import (
    PRIORITY_INTERACTIVE,
    ProtocolError,
    RETRYABLE_SHED_REASONS,
    ServeError,
    encode_line,
)


class ClientTimeoutError(ServeError, TimeoutError):
    """A request's per-call deadline elapsed waiting on the server.

    Subclasses :class:`TimeoutError` (an ``OSError``), so call sites
    that already handle socket-level failures — ``except (OSError,
    ConnectionError)`` — keep working, while new code can catch the
    serve-typed class directly.
    """


class ServeClient:
    """One TCP connection to a :class:`~repro.serve.server.MatchServer`.

    Not thread-safe: requests and responses are strictly paired on the
    wire, so give each thread its own client (connections are cheap and
    the server handles each on its own thread).

    ``timeout_s`` is the per-request deadline (``None`` = wait forever,
    for debugging only).  Pass ``retry=RetryPolicy(...)`` to turn on
    reconnect-and-retry; ``retry_seed`` seeds the backoff jitter so test
    runs are reproducible.  ``idempotency`` controls whether ``match``
    requests carry auto-generated idempotency keys — it defaults to on
    exactly when retrying is on, which is when duplicate delivery
    becomes possible.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout_s: float | None = 30.0,
        *,
        retry: RetryPolicy | None = None,
        retry_seed: int = 0,
        idempotency: bool | None = None,
    ) -> None:
        self._host = host
        self._port = port
        self.timeout_s = timeout_s
        self.retry = retry
        self._rng = random.Random(retry_seed)
        self._idempotency = idempotency if idempotency is not None else retry is not None
        # Keys must be unique across client instances (the server's cache
        # is shared), so the prefix is random even though jitter is seeded.
        self._key_prefix = uuid.uuid4().hex[:16]
        self._key_serial = 0
        self._sock: socket.socket | None = None
        self._reader: Any = None
        self._ensure_connected()

    # ------------------------------------------------------------------
    # Wire plumbing
    # ------------------------------------------------------------------

    def _ensure_connected(self) -> tuple[socket.socket, Any]:
        """Return the live socket + reader, dialing a fresh one if needed."""
        if self._sock is None or self._reader is None:
            self._sock = socket.create_connection(
                (self._host, self._port), timeout=self.timeout_s
            )
            self._reader = self._sock.makefile("rb")
        return self._sock, self._reader

    def _disconnect(self) -> None:
        """Drop the connection so the next request dials a clean one."""
        reader, sock = self._reader, self._sock
        self._reader = None
        self._sock = None
        if reader is not None:
            try:
                reader.close()
            except OSError:
                pass
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    def _request_once(self, payload: dict[str, Any]) -> dict[str, Any]:
        """One send/receive exchange over the current connection."""
        sock, reader = self._ensure_connected()
        try:
            sock.settimeout(self.timeout_s)
            sock.sendall(encode_line(payload))
            raw = reader.readline()
        except TimeoutError as exc:
            # The stream is desynchronized now (the response may still
            # land later); drop the connection so a retry starts clean.
            self._disconnect()
            raise ClientTimeoutError(
                f"no response within timeout_s={self.timeout_s}"
            ) from exc
        if not raw:
            self._disconnect()
            raise ConnectionError("server closed the connection")
        try:
            response = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ProtocolError(f"server response is not valid JSON: {exc}") from exc
        if not isinstance(response, dict):
            raise ProtocolError("server response was not a JSON object")
        return response

    def request(self, payload: dict[str, Any]) -> dict[str, Any]:
        """Send one request object, return the decoded response object.

        Without a retry policy this is a single exchange.  With one,
        connection-level failures (connect, timeout, reset, server
        close) and retryable shed responses are retried under the
        policy's jittered backoff; the last failure is re-raised (or the
        last shed response returned) when attempts run out.
        """
        policy = self.retry
        if policy is None:
            return self._request_once(payload)
        last_error: OSError | None = None
        for attempt in range(policy.max_attempts):
            if attempt:
                time.sleep(policy.delay(attempt - 1, rng=self._rng))
            try:
                response = self._request_once(payload)
            except OSError as exc:  # includes ClientTimeoutError
                last_error = exc
                self._disconnect()
                continue
            if (
                response.get("outcome") == "shed"
                and response.get("shed_reason") in RETRYABLE_SHED_REASONS
                and attempt + 1 < policy.max_attempts
            ):
                continue
            return response
        assert last_error is not None  # the loop only falls through on errors
        raise last_error

    # ------------------------------------------------------------------
    # Verbs
    # ------------------------------------------------------------------

    def match(
        self,
        values: Sequence[str | None],
        request_id: str | None = None,
        k: int | None = None,
        min_similarity: float | None = None,
        strategy: str | None = None,
        deadline_ms: float | None = None,
        priority: str = PRIORITY_INTERACTIVE,
        idempotency_key: str | None = None,
    ) -> dict[str, Any]:
        """Send one match request and return the decoded response object.

        When idempotency is on (see ``__init__``) and no explicit
        ``idempotency_key`` is given, a unique key is generated here —
        before the retry loop — so every retransmission of this logical
        request carries the same key.
        """
        payload: dict[str, Any] = {
            "op": "match",
            "values": list(values),
            "priority": priority,
        }
        if request_id is not None:
            payload["id"] = request_id
        if k is not None:
            payload["k"] = k
        if min_similarity is not None:
            payload["min_similarity"] = min_similarity
        if strategy is not None:
            payload["strategy"] = strategy
        if deadline_ms is not None:
            payload["deadline_ms"] = deadline_ms
        if idempotency_key is None and self._idempotency:
            self._key_serial += 1
            idempotency_key = f"{self._key_prefix}-{self._key_serial}"
        if idempotency_key is not None:
            payload["idempotency_key"] = idempotency_key
        return self.request(payload)

    def ping(self) -> dict[str, Any]:
        """Return the server's readiness payload."""
        return self.request({"op": "ping"})

    def stats(self, sections: Sequence[str] | None = None) -> dict[str, Any]:
        """Return the server's stats payload.

        ``sections`` selects which report blocks the server includes
        (any of ``"serve"``, ``"metrics"``, ``"traces"``); ``None``
        requests the server default of serve counters plus metrics.
        """
        payload: dict[str, Any] = {"op": "stats"}
        if sections is not None:
            payload["sections"] = list(sections)
        return self.request(payload)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Close the connection; safe to call twice."""
        self._disconnect()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


__all__ = ["ClientTimeoutError", "ServeClient"]
