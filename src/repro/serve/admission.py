"""Admission control: a bounded, priority-aware request queue.

The first rung of the overload ladder.  A server that queues unboundedly
converts overload into latency (every request eventually times out) and
memory growth (the queue *is* the leak); admission control converts it
into honest, typed refusal at the door.  The queue here enforces three
policies:

- **Bounded capacity.**  ``offer`` never blocks and never grows the
  queue past ``capacity``; at capacity it raises
  :class:`~repro.serve.protocol.SheddedError` instead.
- **Priority classes.**  ``interactive`` work dequeues before ``bulk``
  work, and an interactive arrival at a full queue *displaces* the
  newest queued bulk item (shed with reason ``displaced``) rather than
  being turned away — lowest-priority work is always shed first.
- **Wait accounting.**  Dequeue records each item's queue wait into a
  bounded ring; :meth:`p95_wait` over that ring is the signal the
  degradation ladder and the bulk-shedding governor act on.

Thread-safe; a counting semaphore hands items to whichever worker has
been waiting, and workers poll with a timeout so lifecycle transitions
never need to wake them explicitly.  After :meth:`close`, offers are
refused (``draining``) but takes continue — draining means *finish* the
admitted work, not abandon it.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable

from repro.analysis.debuglock import make_lock
from repro.core.matcher import MatchResult
from repro.core.resilience import Deadline
from repro.serve.protocol import (
    PRIORITY_BULK,
    PRIORITY_INTERACTIVE,
    Request,
    SHED_DISPLACED,
    SHED_DRAINING,
    SHED_QUEUE_FULL,
    SheddedError,
)

#: How many recent queue waits the p95 estimate is computed over.
WAIT_WINDOW = 256


class WorkItem:
    """One admitted match request on its way through the server.

    The connection handler that submitted the item blocks on
    :attr:`done`; exactly one of :meth:`complete`, :meth:`fail`, or
    :meth:`shed` resolves it.  All resolution fields are written before
    the event is set and read only after it fires, so the item needs no
    lock of its own.
    """

    __slots__ = (
        "request",
        "deadline",
        "enqueued_at",
        "queue_wait",
        "done",
        "result",
        "requested_strategy",
        "effective_strategy",
        "stage",
        "shed_reason",
        "error_type",
        "error_message",
    )

    def __init__(
        self,
        request: Request,
        deadline: Deadline | None,
        enqueued_at: float,
    ) -> None:
        self.request = request
        self.deadline = deadline
        self.enqueued_at = enqueued_at
        self.queue_wait = 0.0
        self.done = threading.Event()
        self.result: MatchResult | None = None
        self.requested_strategy = ""
        self.effective_strategy = ""
        self.stage = ""
        self.shed_reason: str | None = None
        self.error_type: str | None = None
        self.error_message: str | None = None

    def complete(
        self,
        result: MatchResult,
        requested_strategy: str,
        effective_strategy: str,
        stage: str,
    ) -> None:
        """The engine ran (possibly degraded); attach the result."""
        self.result = result
        self.requested_strategy = requested_strategy
        self.effective_strategy = effective_strategy
        self.stage = stage
        self.done.set()

    def fail(self, error_type: str, message: str) -> None:
        """A typed failure the engine could not absorb."""
        self.error_type = error_type
        self.error_message = message
        self.done.set()

    def shed(self, reason: str) -> None:
        """The server refused to run this item; the engine was untouched."""
        self.shed_reason = reason
        self.done.set()


class AdmissionQueue:
    """Bounded two-class FIFO with displacement and wait accounting."""

    def __init__(
        self,
        capacity: int,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._clock = clock
        self._lock = make_lock("AdmissionQueue._lock")
        self._interactive: deque[WorkItem] = deque()
        self._bulk: deque[WorkItem] = deque()
        self._available = threading.Semaphore(0)
        self._closed = False
        self._max_depth = 0
        self._waits: deque[float] = deque(maxlen=WAIT_WINDOW)

    # ------------------------------------------------------------------
    # Producer side (connection handlers)
    # ------------------------------------------------------------------

    def offer(self, item: WorkItem) -> None:
        """Admit ``item`` or raise :class:`SheddedError`; never blocks.

        At capacity, an interactive arrival displaces the newest queued
        bulk item (which is shed with reason ``displaced``); a bulk
        arrival — or an interactive one with no bulk to displace — is
        refused with ``queue_full``.  After :meth:`close`, every offer
        is refused with ``draining``.
        """
        displaced: WorkItem | None = None
        with self._lock:
            if self._closed:
                raise SheddedError(SHED_DRAINING, "server is draining")
            depth = len(self._interactive) + len(self._bulk)
            if depth >= self.capacity:
                if (
                    item.request.priority == PRIORITY_INTERACTIVE
                    and self._bulk
                ):
                    # Shed lowest-priority-first: the newest bulk item has
                    # waited least, so evicting it wastes the least work.
                    displaced = self._bulk.pop()
                else:
                    raise SheddedError(
                        SHED_QUEUE_FULL,
                        f"admission queue at capacity ({self.capacity})",
                    )
            if item.request.priority == PRIORITY_BULK:
                self._bulk.append(item)
            else:
                self._interactive.append(item)
            depth = len(self._interactive) + len(self._bulk)
            if depth > self._max_depth:
                self._max_depth = depth
        if displaced is not None:
            # The displaced item's semaphore token is inherited by the
            # new item, so the count still matches the queue contents.
            displaced.shed(SHED_DISPLACED)
        else:
            self._available.release()

    # ------------------------------------------------------------------
    # Consumer side (server workers)
    # ------------------------------------------------------------------

    # Token consumption here is the design, not a leak: one semaphore
    # token corresponds to one queued item, and a successful take hands
    # both to the worker together.  A token whose item was shed out of
    # the queue (by the governor) is deliberately swallowed as a timeout
    # so the count re-converges with the queue contents.
    def take(self, timeout: float) -> WorkItem | None:  # reprolint: disable=resource-leak
        """The next item, best class first, or ``None`` on timeout.

        Records the item's queue wait into the p95 ring.  A semaphore
        token without a matching item (its item was shed out of the
        queue by the governor) is treated as a timeout.
        """
        if not self._available.acquire(timeout=timeout):
            return None
        with self._lock:
            if self._interactive:
                item = self._interactive.popleft()
            elif self._bulk:
                item = self._bulk.popleft()
            else:
                return None
            item.queue_wait = max(0.0, self._clock() - item.enqueued_at)
            self._waits.append(item.queue_wait)
        return item

    def shed_bulk(self, reason: str) -> list[WorkItem]:
        """Remove every queued bulk item; the caller sheds them.

        The overload governor's lever: when queue-wait p95 crosses the
        shed threshold, the lowest-priority class goes first — before
        any interactive request is refused.
        """
        with self._lock:
            victims = list(self._bulk)
            self._bulk.clear()
        for victim in victims:
            victim.shed(reason)
        return victims

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Refuse all future offers (takes continue until empty)."""
        with self._lock:
            self._closed = True

    def drain_remaining(self) -> list[WorkItem]:
        """Empty the queue (both classes), returning the unrun items.

        Called when the drain budget runs out: whatever is still queued
        is shed by the caller instead of executed.
        """
        with self._lock:
            victims = list(self._interactive) + list(self._bulk)
            self._interactive.clear()
            self._bulk.clear()
        return victims

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    @property
    def depth(self) -> int:
        """Items currently queued (both classes)."""
        with self._lock:
            return len(self._interactive) + len(self._bulk)

    @property
    def max_depth(self) -> int:
        """High-water mark of :attr:`depth` — provably <= capacity."""
        with self._lock:
            return self._max_depth

    def p95_wait(self) -> float:
        """95th-percentile queue wait (seconds) over the recent window."""
        with self._lock:
            waits = sorted(self._waits)
        if not waits:
            return 0.0
        return waits[min(len(waits) - 1, int(0.95 * (len(waits) - 1)))]


class ConnectionGate:
    """Global and per-peer caps on concurrently open connections.

    The admission queue bounds *work*; this gate bounds *sockets*.  A
    peer that opens connections without sending requests consumes a
    handler thread and a file descriptor each time — the connection-level
    analogue of queue flooding — so the acceptor asks the gate before
    spawning a handler and refuses the socket with a typed
    ``too_many_connections`` response when either cap is hit.  The
    per-peer cap keeps one hostile address from monopolizing the global
    allowance.

    Thread-safe: :meth:`admit` and :meth:`release` are called from the
    acceptor and from every handler's exit path.
    """

    def __init__(self, max_connections: int, max_per_peer: int) -> None:
        if max_connections < 1:
            raise ValueError("max_connections must be >= 1")
        if max_per_peer < 1:
            raise ValueError("max_per_peer must be >= 1")
        self.max_connections = max_connections
        self.max_per_peer = max_per_peer
        self._lock = make_lock("ConnectionGate._lock")
        self._total = 0
        self._per_peer: dict[str, int] = {}

    def admit(self, peer: str) -> bool:
        """Try to register one connection from ``peer``.

        Returns ``False`` (and registers nothing) when either cap is
        already at its limit; the caller must not :meth:`release` then.
        """
        with self._lock:
            if self._total >= self.max_connections:
                return False
            if self._per_peer.get(peer, 0) >= self.max_per_peer:
                return False
            self._total += 1
            self._per_peer[peer] = self._per_peer.get(peer, 0) + 1
            return True

    def release(self, peer: str) -> None:
        """Unregister one previously admitted connection from ``peer``.

        A release with nothing admitted for ``peer`` is ignored — the
        counters never go negative, so a stray double-release cannot
        widen the caps.
        """
        with self._lock:
            remaining = self._per_peer.get(peer, 0) - 1
            if remaining > 0:
                self._per_peer[peer] = remaining
            elif remaining == 0:
                del self._per_peer[peer]
            else:
                return
            self._total -= 1

    @property
    def open_connections(self) -> int:
        """Connections currently admitted across all peers."""
        with self._lock:
            return self._total
