"""Server lifecycle: readiness states, worker health, degradation ladder.

Three small, separately testable machines that together keep a
long-running match server honest about its own condition:

- :class:`Lifecycle` — the readiness state machine
  (``loading → serving → draining → stopped``).  Transitions are
  validated; every response and every ``repro ping`` carries the current
  state, so orchestration (and humans) can tell "slow" from "going
  away".
- :class:`WorkerHealth` — heartbeat registry behind the watchdog thread.
  Workers beat before and after each request; a worker that has been
  *busy* and silent for longer than ``stuck_after_s`` is reported stuck.
  Python threads cannot be killed, so detection surfaces the condition
  (readiness degrades, the counter rises) instead of pretending to cure
  it.
- :class:`DegradationLadder` — the overload governor.  One
  :class:`~repro.core.resilience.CircuitBreaker` per *stage boundary*
  (``osc→basic`` and ``basic→naive``), each in time-based half-open
  mode: when queue-wait p95 crosses the degrade threshold the innermost
  closed breaker trips and every request runs one stage cheaper; after
  ``cooldown_s`` the breaker half-opens and grants a single probe
  request at the better stage — completing it cleanly while p95 is back
  under the recover threshold recloses the breaker, blowing its deadline
  re-trips it.  Recovery is therefore automatic, rate-limited, and needs
  no restart — exactly the property the time-based breaker was built
  for.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.analysis.debuglock import make_lock
from repro.core.resilience import CircuitBreaker
from repro.serve.protocol import ServeError

STATE_LOADING = "loading"
STATE_SERVING = "serving"
STATE_DRAINING = "draining"
STATE_STOPPED = "stopped"

STATES = (STATE_LOADING, STATE_SERVING, STATE_DRAINING, STATE_STOPPED)

_ALLOWED_TRANSITIONS: dict[str, frozenset[str]] = {
    STATE_LOADING: frozenset({STATE_SERVING, STATE_STOPPED}),
    STATE_SERVING: frozenset({STATE_DRAINING}),
    STATE_DRAINING: frozenset({STATE_STOPPED}),
    STATE_STOPPED: frozenset(),
}

#: The degradation stages, most capable first (mirrors the resilience
#: layer's fallback chain).
STAGES = ("osc", "basic", "naive")


class LifecycleError(ServeError):
    """An illegal lifecycle transition was requested."""


class Lifecycle:
    """Validated readiness state machine with uptime accounting."""

    def __init__(self, clock: Callable[[], float] = time.monotonic) -> None:
        self._clock = clock
        self._lock = make_lock("Lifecycle._lock")
        self._state = STATE_LOADING
        self._started_at = clock()

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def uptime(self) -> float:
        """Seconds since construction (monotonic)."""
        return self._clock() - self._started_at

    def transition(self, target: str) -> None:
        """Move to ``target``; raises :class:`LifecycleError` if illegal."""
        with self._lock:
            if target not in STATES:
                raise LifecycleError(f"unknown lifecycle state {target!r}")
            if target == self._state:
                return  # idempotent: shutdown paths may race benignly
            if target not in _ALLOWED_TRANSITIONS[self._state]:
                raise LifecycleError(
                    f"illegal transition {self._state!r} -> {target!r}"
                )
            self._state = target

    def is_serving(self) -> bool:
        """True while the server accepts match work."""
        with self._lock:
            return self._state == STATE_SERVING

    def is_stopped(self) -> bool:
        """True once the server has fully shut down."""
        with self._lock:
            return self._state == STATE_STOPPED


class WorkerHealth:
    """Heartbeat registry: which workers are alive, busy, or stuck."""

    def __init__(
        self,
        stuck_after_s: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if stuck_after_s <= 0:
            raise ValueError("stuck_after_s must be positive")
        self.stuck_after_s = stuck_after_s
        self._clock = clock
        self._lock = make_lock("WorkerHealth._lock")
        # worker name -> (last beat instant, busy?)
        self._beats: dict[str, tuple[float, bool]] = {}

    def beat(self, worker: str, busy: bool) -> None:
        """Record a liveness beat (workers call this around each item)."""
        with self._lock:
            self._beats[worker] = (self._clock(), busy)

    def deregister(self, worker: str) -> None:
        """A worker exited cleanly; stop tracking it."""
        with self._lock:
            self._beats.pop(worker, None)

    def stuck_workers(self) -> tuple[str, ...]:
        """Workers that were busy and silent for over ``stuck_after_s``.

        An *idle* silent worker is fine — it is parked on the queue poll;
        only a worker that started an item and never came back is stuck.
        """
        now = self._clock()
        with self._lock:
            return tuple(
                sorted(
                    name
                    for name, (last, busy) in self._beats.items()
                    if busy and now - last > self.stuck_after_s
                )
            )

    def workers(self) -> int:
        """Number of registered (heartbeating) workers."""
        with self._lock:
            return len(self._beats)

    def busy_workers(self) -> int:
        """Workers currently executing an item (last beat was busy)."""
        with self._lock:
            return sum(1 for _, busy in self._beats.values() if busy)


class DegradationLadder:
    """Overload-driven strategy degradation with probe-based recovery.

    ``observe(p95)`` trips one stage per call while p95 stays over
    ``degrade_at_s`` (osc→basic first, then basic→naive);
    :meth:`stage_for_request` returns the stage a request should run at,
    plus the breaker to report back to when the request is a half-open
    recovery probe.  :meth:`stage` is the read-only view used by
    responses and readiness.
    """

    def __init__(
        self,
        degrade_at_s: float,
        recover_at_s: float,
        cooldown_s: float,
        dwell_s: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if recover_at_s > degrade_at_s:
            raise ValueError("recover_at_s must be <= degrade_at_s (hysteresis)")
        self.degrade_at_s = degrade_at_s
        self.recover_at_s = recover_at_s
        # Minimum time between successive trips, so a newly degraded
        # stage gets a chance to pull p95 down before the ladder
        # escalates again (defaults to the recovery cooldown).
        self.dwell_s = cooldown_s if dwell_s is None else dwell_s
        self._clock = clock
        self._last_trip: float | None = None
        self._lock = make_lock("DegradationLadder._lock")
        # One breaker per stage boundary, keyed by the stage it guards.
        self._breakers: tuple[tuple[str, CircuitBreaker], ...] = tuple(
            (
                stage,
                CircuitBreaker(
                    failure_threshold=1, cooldown_s=cooldown_s, clock=clock
                ),
            )
            for stage in STAGES[:-1]
        )

    def stage(self) -> str:
        """The current stage (read-only; never grants probes)."""
        for stage, breaker in self._breakers:
            if breaker.state == "closed":
                return stage
        return STAGES[-1]

    def stage_for_request(self) -> tuple[str, CircuitBreaker | None]:
        """``(stage, probe)`` for one request about to execute.

        ``probe`` is non-``None`` when this request was granted a
        breaker's single half-open trial at a better stage than the
        steady state would allow: the worker must call
        ``probe.record_success()`` or ``probe.record_failure()`` after
        running it, or the breaker stays half-open.
        """
        with self._lock:
            for stage, breaker in self._breakers:
                state = breaker.state
                if state == "closed":
                    return stage, None
                if breaker.allow():
                    return stage, breaker
            return STAGES[-1], None

    def observe(self, p95_wait_s: float) -> str | None:
        """Feed one p95 sample; returns the stage just tripped, if any."""
        if p95_wait_s < self.degrade_at_s:
            return None
        with self._lock:
            now = self._clock()
            if self._last_trip is not None and now - self._last_trip < self.dwell_s:
                return None
            for stage, breaker in self._breakers:
                if breaker.state == "closed":
                    breaker.record_failure()
                    self._last_trip = now
                    return stage
        return None

    def probe_succeeded(self, p95_wait_s: float) -> bool:
        """Is the system calm enough for a clean probe to reclose?"""
        return p95_wait_s <= self.recover_at_s

    def trips(self) -> int:
        """Total breaker trips across all stage boundaries."""
        return sum(breaker.trips for _, breaker in self._breakers)

    def breaker_states(self) -> dict[str, str]:
        """Stage boundary -> breaker state, for readiness reporting."""
        return {stage: breaker.state for stage, breaker in self._breakers}
