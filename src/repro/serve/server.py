"""The `repro serve` engine: a bounded, drain-safe online match server.

Architecture (one process, thread-per-role):

- **Acceptor** — accepts TCP connections and hands each to a handler
  thread.  It starts *before* the engine finishes loading so ``ping``
  answers immediately (readiness ``loading``); match requests arriving
  in that window are shed with reason ``loading`` instead of queueing
  against an engine that does not exist yet.
- **Connection handlers** — one per client, reading newline-delimited
  JSON requests (:mod:`repro.serve.protocol`).  A ``match`` request is
  stamped with its end-to-end :class:`~repro.core.resilience.Deadline`
  and offered to the :class:`~repro.serve.admission.AdmissionQueue`;
  the handler then blocks on the item's event and writes whichever of
  the trichotomy outcomes resolved it.
- **Workers** — pull admitted items, shed anything whose deadline
  expired while queued, ask the
  :class:`~repro.serve.lifecycle.DegradationLadder` what stage to run
  at, and execute through the batch engine's per-thread matcher
  (:meth:`~repro.core.batch.BatchMatcher.worker_matcher`) with a
  :class:`~repro.core.resilience.QueryBudget` clamped to the deadline's
  *remainder* — queue wait is not free, it comes out of compute.
- **Watchdog** — periodically feeds queue-wait p95 to the ladder
  (degrade), sheds queued bulk work past the shed threshold, and
  reports workers that went busy-silent (stuck) through readiness.

Shutdown (:meth:`MatchServer.shutdown`) is a drain, not an abort: stop
accepting, refuse new offers, finish what was admitted within the drain
budget, shed the rest with a typed reason, then checkpoint the WAL so
the on-disk database is clean for the next process.
"""

from __future__ import annotations

import socket
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable

from repro.analysis.debuglock import make_lock
from repro.core.batch import BatchMatcher
from repro.core.matcher import FuzzyMatcher
from repro.core.resilience import Deadline, QueryBudget
from repro.db.database import Database
from repro.db.errors import DatabaseError
from repro.db.snapshot import save_database
from repro.obs.exposition import snapshot_as_dict
from repro.obs.registry import (
    MetricsRegistry,
    RegistrySnapshot,
    default_registry,
    merge_snapshots,
)
from repro.obs.tracing import Tracer
from repro.serve.admission import AdmissionQueue, ConnectionGate, WorkItem
from repro.serve.lifecycle import (
    STAGES,
    STATE_DRAINING,
    STATE_LOADING,
    STATE_SERVING,
    STATE_STOPPED,
    DegradationLadder,
    Lifecycle,
    WorkerHealth,
)
from repro.serve.protocol import (
    SHED_DEADLINE_EXPIRED,
    SHED_DRAIN_BUDGET,
    SHED_FRAME_TOO_LARGE,
    SHED_LOADING,
    SHED_OVERLOAD,
    SHED_PIPELINE_OVERFLOW,
    SHED_SLOW_FRAME,
    SHED_TOO_MANY_CONNECTIONS,
    FrameReader,
    FrameTooLargeError,
    PipelineOverflowError,
    Request,
    ProtocolError,
    ServeError,
    SheddedError,
    SlowFrameError,
    decode_request,
    encode_line,
    error_response,
    result_response,
    shed_response,
)

#: ``engine_factory`` return type: the batch engine plus (optionally)
#: the database handle to checkpoint on drain.
EngineFactory = Callable[[], "tuple[BatchMatcher, Database | None]"]


@dataclass(frozen=True)
class ServeConfig:
    """Tuning knobs for :class:`MatchServer` (all have safe defaults)."""

    host: str = "127.0.0.1"
    port: int = 0
    """0 = let the OS pick; the bound port is in ``server.address``."""
    workers: int = 4
    """Engine worker threads (one per-thread matcher each)."""
    queue_capacity: int = 64
    """Admission queue bound; arrivals past it are shed, not queued."""
    default_deadline_ms: float | None = 250.0
    """End-to-end deadline applied when a request names none
    (``None`` = requests without a deadline run unbounded)."""
    max_page_fetches: int | None = None
    """Optional per-request physical-read cap (see ``QueryBudget``)."""
    degrade_p95_s: float = 0.200
    """Queue-wait p95 at which the ladder trips one stage cheaper."""
    recover_p95_s: float = 0.050
    """Queue-wait p95 a recovery probe must see to reclose a breaker."""
    shed_p95_s: float = 0.400
    """Queue-wait p95 at which queued bulk work is shed outright."""
    stage_cooldown_s: float = 1.0
    """Seconds a tripped stage breaker waits before probing recovery."""
    drain_budget_s: float = 5.0
    """Wall-clock allowance for finishing admitted work on shutdown."""
    watchdog_interval_s: float = 0.05
    """Governor/watchdog tick."""
    stuck_after_s: float = 10.0
    """A busy worker silent this long is reported stuck."""
    idle_poll_s: float = 0.1
    """Worker queue-poll timeout (drain/stop latency granularity)."""
    response_grace_s: float = 5.0
    """Extra wait past a request's deadline before the connection
    handler gives up on its worker (stuck-worker escape hatch)."""
    max_frame_bytes: int = 1 << 20
    """Hard cap on one request line; larger frames are drained and shed
    with reason ``frame_too_large``, never buffered."""
    frame_timeout_s: float = 10.0
    """Once a frame's first byte arrives the whole line must follow
    within this budget (slowloris defense)."""
    idle_timeout_s: float = 300.0
    """A connection silent this long between requests is closed."""
    write_timeout_s: float = 10.0
    """Per-response ``sendall`` deadline; a peer that will not read its
    response loses the connection instead of parking a handler."""
    max_pipelined_frames: int = 32
    """Per-connection cap on decoded-but-unanswered frames."""
    oversize_drain_bytes: int = 1 << 20
    """How far past ``max_frame_bytes`` the server drains an oversized
    line hunting for its newline before giving up on the connection."""
    max_connections: int = 256
    """Global cap on concurrently open connections."""
    max_connections_per_peer: int = 64
    """Per-peer-address cap on concurrently open connections."""
    idempotency_cache_size: int = 1024
    """Entries in the bounded response cache for client retries."""
    slow_trace_ms: float = 50.0
    """Requests slower than this land in the tracer's slow-query log."""
    trace_ring_capacity: int = 64
    """Recent request traces retained in the tracer's ring buffer."""
    slow_trace_capacity: int = 16
    """Slow request traces retained alongside the ring buffer."""
    trace_requests: bool = True
    """Capture a span tree per executed request (metrics must also be
    enabled); ``False`` keeps only the metrics plane."""

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        if self.default_deadline_ms is not None and self.default_deadline_ms <= 0:
            raise ValueError("default_deadline_ms must be positive")
        if not (0 <= self.recover_p95_s <= self.degrade_p95_s <= self.shed_p95_s):
            raise ValueError(
                "thresholds must satisfy 0 <= recover <= degrade <= shed"
            )
        for name in (
            "stage_cooldown_s",
            "drain_budget_s",
            "watchdog_interval_s",
            "stuck_after_s",
            "idle_poll_s",
            "response_grace_s",
            "frame_timeout_s",
            "idle_timeout_s",
            "write_timeout_s",
            "slow_trace_ms",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        for name in (
            "max_frame_bytes",
            "max_pipelined_frames",
            "max_connections",
            "max_connections_per_peer",
            "idempotency_cache_size",
            "trace_ring_capacity",
            "slow_trace_capacity",
        ):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")
        if self.oversize_drain_bytes < 0:
            raise ValueError("oversize_drain_bytes must be >= 0")


class ServeStats:
    """Thread-safe outcome counters (reported by ``op=stats``).

    A view over strict counters in a
    :class:`~repro.obs.registry.MetricsRegistry` (the ``repro_serve_*``
    series); reason- and priority-classed outcomes become labeled series
    (``repro_serve_shed_total{reason=...}`` etc).  :meth:`as_dict`
    rebuilds the historical flat-dict report shape from the registry so
    the wire contract predates-and-survives the metrics plane.
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        if registry is None:
            registry = MetricsRegistry()
        self.registry = registry
        self._completed = registry.counter("repro_serve_completed_total")
        self._stage_trips = registry.counter("repro_serve_stage_trips_total")
        self._bulk_shed_sweeps = registry.counter(
            "repro_serve_bulk_shed_sweeps_total"
        )
        self._idempotent_replays = registry.counter(
            "repro_serve_idempotent_replays_total"
        )

    def record_submitted(self, priority: str) -> None:
        """Count one admitted request under its priority class."""
        self.registry.counter(
            "repro_serve_submitted_total", {"priority": priority}
        ).inc()

    def record_completed(self) -> None:
        """Count one full-fidelity completion."""
        self._completed.inc()

    def record_degraded(self, reason: str) -> None:
        """Count one degraded answer under its reason."""
        self.registry.counter(
            "repro_serve_degraded_total", {"reason": reason}
        ).inc()

    def record_shed(self, reason: str) -> None:
        """Count one shed request under its typed reason."""
        self.registry.counter("repro_serve_shed_total", {"reason": reason}).inc()

    def record_error(self, error_type: str) -> None:
        """Count one typed error response."""
        self.registry.counter("repro_serve_errors_total", {"type": error_type}).inc()

    def record_stage_trip(self) -> None:
        """Count one degradation-ladder stage trip."""
        self._stage_trips.inc()

    def record_bulk_shed_sweep(self) -> None:
        """Count one watchdog sweep that shed queued bulk work."""
        self._bulk_shed_sweeps.inc()

    def record_replay(self) -> None:
        """Count one response answered from the idempotency cache."""
        self._idempotent_replays.inc()

    def _by_label(self, name: str) -> dict[str, int]:
        """Series values of ``name`` keyed by their single label value."""
        return {
            pairs[0][1]: value
            for pairs, value in self.registry.counter_values(name).items()
            if pairs
        }

    def as_dict(self) -> dict[str, Any]:
        """Snapshot of all counters as a JSON-ready dict."""
        submitted = self._by_label("repro_serve_submitted_total")
        degraded = self._by_label("repro_serve_degraded_total")
        shed = self._by_label("repro_serve_shed_total")
        errors = self._by_label("repro_serve_errors_total")
        return {
            "submitted": dict(sorted(submitted.items())),
            "completed": self._completed.value(),
            "degraded": sum(degraded.values()),
            "degraded_reasons": dict(sorted(degraded.items())),
            "shed": sum(shed.values()),
            "shed_reasons": dict(sorted(shed.items())),
            "errors": dict(sorted(errors.items())),
            "stage_trips": self._stage_trips.value(),
            "bulk_shed_sweeps": self._bulk_shed_sweeps.value(),
            "idempotent_replays": self._idempotent_replays.value(),
        }


class IdempotencyCache:
    """Bounded LRU of match responses keyed by client idempotency key.

    A client that retries after a timeout resends the same key; answering
    a retransmission from this cache means the engine ran the request at
    most once even though the wire saw it twice.  Only engine-resolved
    outcomes (completed / degraded / typed engine error) are stored —
    shed responses and stuck-worker timeouts are not, so a retry of
    refused or unresolved work is admitted fresh.  Past ``capacity`` the
    least recently used entry is evicted, so a hostile client cannot
    balloon server memory through unique keys.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._lock = make_lock("IdempotencyCache._lock")
        self._entries: OrderedDict[str, dict[str, Any]] = OrderedDict()

    def get(self, key: str) -> dict[str, Any] | None:
        """The cached response for ``key``, refreshing its recency."""
        with self._lock:
            payload = self._entries.get(key)
            if payload is not None:
                self._entries.move_to_end(key)
            return payload

    def put(self, key: str, payload: dict[str, Any]) -> None:
        """Store ``key``'s response, evicting the oldest past capacity."""
        with self._lock:
            self._entries[key] = payload
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class MatchServer:
    """Online fuzzy-match server over one batch engine.

    Construct with either a ready ``engine`` (and optionally the
    ``database`` to checkpoint on drain) or an ``engine_factory`` whose
    load time is surfaced as the ``loading`` readiness state.  ``start``
    binds, begins accepting (ping works immediately), resolves the
    engine, then transitions to ``serving``; ``shutdown`` drains.

    ``on_bound`` fires with ``(host, port)`` right after bind — before
    loading — so supervisors can discover an OS-assigned port.
    ``before_execute`` is a test seam invoked by a worker just before it
    runs an item's query.
    """

    def __init__(
        self,
        engine: BatchMatcher | None = None,
        database: Database | None = None,
        config: ServeConfig | None = None,
        *,
        engine_factory: EngineFactory | None = None,
        on_bound: Callable[[str, int], None] | None = None,
        before_execute: Callable[[WorkItem], None] | None = None,
        clock: Callable[[], float] = time.monotonic,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        if (engine is None) == (engine_factory is None):
            raise ValueError("pass exactly one of engine= or engine_factory=")
        self.config = config if config is not None else ServeConfig()
        self._engine = engine
        self._database = database
        self._engine_factory = engine_factory
        self._on_bound = on_bound
        self._before_execute = before_execute
        self._clock = clock
        self._default_strategy = "osc"

        self.lifecycle = Lifecycle(clock=clock)
        self.queue = AdmissionQueue(self.config.queue_capacity, clock=clock)
        self.health = WorkerHealth(self.config.stuck_after_s, clock=clock)
        self.ladder = DegradationLadder(
            degrade_at_s=self.config.degrade_p95_s,
            recover_at_s=self.config.recover_p95_s,
            cooldown_s=self.config.stage_cooldown_s,
            clock=clock,
        )
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = (
            tracer
            if tracer is not None
            else Tracer(
                ring_capacity=self.config.trace_ring_capacity,
                slow_capacity=self.config.slow_trace_capacity,
                slow_threshold_s=self.config.slow_trace_ms / 1000.0,
            )
        )
        self.stats = ServeStats(self.registry)
        self._obs_queue_wait = self.registry.histogram(
            "repro_serve_queue_wait_seconds"
        )
        self._obs_request_seconds = {
            stage: self.registry.histogram(
                "repro_serve_request_seconds", {"stage": stage}
            )
            for stage in STAGES
        }
        self.registry.register_collector(self._collect_gauges)
        self.gate = ConnectionGate(
            self.config.max_connections, self.config.max_connections_per_peer
        )
        self.idempotency = IdempotencyCache(self.config.idempotency_cache_size)

        self.address: tuple[str, int] | None = None
        self._listener: socket.socket | None = None
        self._threads: list[threading.Thread] = []
        self._workers_stop = threading.Event()
        self._shutdown_event = threading.Event()
        self._conns_lock = make_lock("MatchServer._conns_lock")
        self._conns: list[socket.socket] = []
        self._shutdown_lock = make_lock("MatchServer._shutdown_lock")
        self._drained = False
        self.checkpoint_error: str | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> tuple[str, int]:
        """Bind, accept, load, serve.  Returns the bound address.

        Blocks until the engine is resolved and workers are running; the
        acceptor runs from the moment the socket is bound, so ``ping``
        (and honest ``loading`` sheds) work during a slow load.
        """
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((self.config.host, self.config.port))
            listener.listen(128)
        except OSError:
            # bind/listen can fail (port in use, bad host) — without this
            # the socket outlives the failed start() call.
            listener.close()
            raise
        self._listener = listener
        host, port = listener.getsockname()[:2]
        self.address = (host, port)
        if self._on_bound is not None:
            self._on_bound(host, port)

        acceptor = threading.Thread(
            target=self._accept_loop, name="repro-serve-acceptor", daemon=True
        )
        acceptor.start()
        self._threads.append(acceptor)

        if self._engine is None:
            assert self._engine_factory is not None
            self._engine, self._database = self._engine_factory()
        engine = self._engine
        self._default_strategy = "osc" if engine.config.use_osc else "basic"
        # Touch lazily-built shared structures while still single-threaded.
        engine.warm_shared_state()

        for index in range(self.config.workers):
            worker = threading.Thread(
                target=self._worker_loop,
                args=(f"worker-{index}",),
                name=f"repro-serve-worker-{index}",
                daemon=True,
            )
            worker.start()
            self._threads.append(worker)
        watchdog = threading.Thread(
            target=self._watchdog_loop, name="repro-serve-watchdog", daemon=True
        )
        watchdog.start()
        self._threads.append(watchdog)

        self.lifecycle.transition(STATE_SERVING)
        return (host, port)

    def request_shutdown(self) -> None:
        """Ask the serve loop to drain (signal-handler safe)."""
        self._shutdown_event.set()

    def serve_until_shutdown(self) -> None:
        """Block until :meth:`request_shutdown`, then drain."""
        # Short waits keep the main thread responsive to signals.
        while not self._shutdown_event.wait(0.2):
            pass
        self.shutdown()

    def shutdown(self, drain_budget_s: float | None = None) -> None:
        """Graceful drain: finish admitted work, shed the rest, checkpoint.

        Safe to call more than once; later calls return immediately.
        """
        with self._shutdown_lock:
            if self._drained:
                return
            self._drained = True
        self._shutdown_event.set()
        self.registry.unregister_collector(self._collect_gauges)
        budget_s = (
            drain_budget_s if drain_budget_s is not None else self.config.drain_budget_s
        )

        if self.lifecycle.state == STATE_LOADING:
            # Nothing admitted yet; there is no work to drain.
            self._close_listener()
            self.lifecycle.transition(STATE_STOPPED)
            return

        self.lifecycle.transition(STATE_DRAINING)
        self._close_listener()
        self.queue.close()

        drain = Deadline.after(budget_s, clock=self._clock)
        while not drain.expired():
            if self.queue.depth == 0 and self.health.busy_workers() == 0:
                break
            time.sleep(0.005)
        for victim in self.queue.drain_remaining():
            victim.shed(SHED_DRAIN_BUDGET)

        self._workers_stop.set()
        for thread in self._threads:
            if thread is not threading.current_thread():
                thread.join(timeout=max(1.0, self.config.idle_poll_s * 4))
        self._checkpoint()
        self._close_connections()
        self.lifecycle.transition(STATE_STOPPED)

    def _checkpoint(self) -> None:
        """Checkpoint the WAL on drain so the next open starts clean."""
        db = self._database
        if db is None or db.pool.wal is None:
            return
        try:
            save_database(db)
        except DatabaseError as exc:
            # Drain must still complete; surface the failure via ping/stats
            # instead of dying with work already refused.
            self.checkpoint_error = str(exc)
            self.stats.record_error(type(exc).__name__)

    def _close_listener(self) -> None:
        listener = self._listener
        self._listener = None
        if listener is not None:
            try:
                listener.close()
            except OSError:
                pass

    def _close_connections(self) -> None:
        with self._conns_lock:
            conns = list(self._conns)
            self._conns.clear()
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass

    def close(self) -> None:
        """Alias for :meth:`shutdown` with the configured drain budget."""
        self.shutdown()

    def __enter__(self) -> "MatchServer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def readiness(self) -> dict[str, Any]:
        """The ``ping`` payload: state, stage, queue and worker health."""
        lifecycle_state = self.lifecycle.state
        stage = self.ladder.stage()
        stuck = self.health.stuck_workers()
        state = lifecycle_state
        if lifecycle_state == STATE_SERVING and (stage != STAGES[0] or stuck):
            state = "degraded"
        payload: dict[str, Any] = {
            "ok": True,
            "state": state,
            "lifecycle_state": lifecycle_state,
            "stage": stage,
            "uptime_s": round(self.lifecycle.uptime(), 3),
            "queue_depth": self.queue.depth,
            "queue_capacity": self.queue.capacity,
            "queue_max_depth": self.queue.max_depth,
            "p95_wait_ms": round(self.queue.p95_wait() * 1000, 3),
            "workers": self.health.workers(),
            "busy_workers": self.health.busy_workers(),
            "stuck_workers": list(stuck),
            "breakers": self.ladder.breaker_states(),
        }
        if self.checkpoint_error is not None:
            payload["checkpoint_error"] = self.checkpoint_error
        return payload

    def stats_payload(
        self, sections: tuple[str, ...] | None = None
    ) -> dict[str, Any]:
        """The ``stats`` op response, shaped by the requested sections.

        ``sections=None`` means the default set ``("serve", "metrics")``;
        ``traces`` is opt-in because serialized span trees are the
        largest part of the payload.  Every response carries ``ok``,
        ``state``, and ``stage`` regardless of sections.
        """
        selected = sections if sections else ("serve", "metrics")
        payload: dict[str, Any] = {
            "ok": True,
            "state": self.lifecycle.state,
            "stage": self.ladder.stage(),
        }
        if "serve" in selected:
            payload.update(self.stats.as_dict())
            payload["queue_max_depth"] = self.queue.max_depth
            payload["ladder_trips"] = self.ladder.trips()
        if "metrics" in selected:
            payload["metrics"] = snapshot_as_dict(self.metrics_snapshot())
        if "traces" in selected:
            tracer = self.tracer
            slowest = tracer.slowest()
            payload["traces"] = {
                "slow_threshold_ms": self.config.slow_trace_ms,
                "recent": [span.as_dict() for span in tracer.recent(8)],
                "slow": [span.as_dict() for span in tracer.slow()],
                "slowest": slowest.as_dict() if slowest is not None else None,
            }
        return payload

    def metrics_snapshot(self) -> RegistrySnapshot:
        """One merged snapshot across every registry this server touches.

        Combines the server's own registry (serve-plane counters and
        latency histograms plus collected gauges), each engine worker's
        per-matcher registry (cache and match counters), and the
        process-global default registry (kernel and FMS counters).
        """
        snapshots = [self.registry.snapshot()]
        engine = self._engine
        if engine is not None:
            snapshots.append(engine.metrics_snapshot())
        snapshots.append(default_registry().snapshot())
        return merge_snapshots(snapshots)

    def set_metrics_enabled(self, enabled: bool) -> None:
        """Toggle metric recording everywhere (benchmark A/B switch)."""
        self.registry.set_enabled(enabled)
        engine = self._engine
        if engine is not None:
            engine.set_metrics_enabled(enabled)
        default_registry().set_enabled(enabled)

    def _collect_gauges(self, registry: MetricsRegistry) -> None:
        """Refresh point-in-time gauges just before a snapshot.

        Runs outside the registry lock (collector contract), reading
        only values that are safe to sample concurrently.
        """
        registry.gauge("repro_serve_queue_depth").set(self.queue.depth)
        registry.gauge("repro_serve_queue_max_depth").set(self.queue.max_depth)
        registry.gauge("repro_serve_ladder_stage").set(
            STAGES.index(self.ladder.stage())
        )
        registry.gauge("repro_serve_p95_wait_seconds").set(self.queue.p95_wait())
        engine = self._engine
        if engine is None:
            return
        pool = engine.reference.relation.heap.pool
        stats = pool.stats
        registry.gauge("repro_pool_hits").set(stats.hits)
        registry.gauge("repro_pool_misses").set(stats.misses)
        lookups = stats.hits + stats.misses
        registry.gauge("repro_pool_hit_rate").set(
            stats.hits / lookups if lookups else 0.0
        )
        registry.gauge("repro_pool_physical_reads").set(stats.physical_reads)
        wal = pool.wal
        if wal is not None:
            registry.gauge("repro_wal_appends").set(wal.stats.appends)
            registry.gauge("repro_wal_syncs").set(wal.stats.syncs)
            registry.gauge("repro_wal_tail_pages").set(wal.tail_pages)

    # ------------------------------------------------------------------
    # Acceptor + connection handling
    # ------------------------------------------------------------------

    def _accept_loop(self) -> None:
        listener = self._listener
        while listener is not None:
            try:
                # Every path below stores the socket (handler thread) or
                # closes it (_refuse_connection); the prologue between
                # accept and that hand-off is non-raising attribute and
                # dict work.
                conn, addr = listener.accept()  # reprolint: disable=resource-leak
            except OSError:
                return  # listener closed: shutdown
            peer = addr[0] if isinstance(addr, tuple) else str(addr)
            if not self.gate.admit(peer):
                self._refuse_connection(conn)
                listener = self._listener
                continue
            with self._conns_lock:
                self._conns.append(conn)
            handler = threading.Thread(
                target=self._handle_connection,
                args=(conn, peer),
                name="repro-serve-conn",
                daemon=True,
            )
            handler.start()
            listener = self._listener

    def _refuse_connection(self, conn: socket.socket) -> None:
        """Turn a socket away at the door with a typed response.

        Best effort and quick — the acceptor must not be parked by a
        refused peer that will not read, so the write deadline here is
        short and independent of the per-connection write timeout.
        """
        self.stats.record_shed(SHED_TOO_MANY_CONNECTIONS)
        try:
            conn.settimeout(1.0)
            conn.sendall(
                encode_line(
                    shed_response(
                        None,
                        SHED_TOO_MANY_CONNECTIONS,
                        self.lifecycle.state,
                        self.ladder.stage(),
                    )
                )
            )
        except OSError:
            pass
        try:
            conn.close()
        except OSError:
            pass

    def _handle_connection(self, conn: socket.socket, peer: str) -> None:
        config = self.config
        reader = FrameReader(
            conn,
            max_frame_bytes=config.max_frame_bytes,
            frame_timeout_s=config.frame_timeout_s,
            idle_timeout_s=config.idle_timeout_s,
            max_pipelined_frames=config.max_pipelined_frames,
            oversize_drain_bytes=config.oversize_drain_bytes,
        )
        try:
            while True:
                try:
                    frame = reader.next_frame()
                except FrameTooLargeError as exc:
                    self.stats.record_shed(SHED_FRAME_TOO_LARGE)
                    self._send_boundary_shed(conn, SHED_FRAME_TOO_LARGE)
                    if exc.recoverable:
                        continue
                    break
                except SlowFrameError:
                    self.stats.record_shed(SHED_SLOW_FRAME)
                    self._send_boundary_shed(conn, SHED_SLOW_FRAME)
                    break
                except PipelineOverflowError:
                    self.stats.record_shed(SHED_PIPELINE_OVERFLOW)
                    self._send_boundary_shed(conn, SHED_PIPELINE_OVERFLOW)
                    break
                if frame is None:
                    break  # EOF or idle timeout
                line = frame.strip()
                if not line:
                    continue
                response = self._respond_line(line)
                conn.settimeout(config.write_timeout_s)
                conn.sendall(response)
        except OSError:
            pass  # peer went away or drain closed the socket under us
        finally:
            try:
                conn.close()
            except OSError:
                pass
            self._forget_connection(conn)
            self.gate.release(peer)

    def _send_boundary_shed(self, conn: socket.socket, reason: str) -> None:
        """Best-effort typed response for a framing violation."""
        try:
            conn.settimeout(self.config.write_timeout_s)
            conn.sendall(
                encode_line(
                    shed_response(
                        None, reason, self.lifecycle.state, self.ladder.stage()
                    )
                )
            )
        except OSError:
            pass

    def _forget_connection(self, conn: socket.socket) -> None:
        with self._conns_lock:
            if conn in self._conns:
                self._conns.remove(conn)

    def _respond_line(self, line: bytes) -> bytes:
        try:
            request = decode_request(line)
        except ProtocolError as exc:
            self.stats.record_error("ProtocolError")
            return encode_line(
                error_response(
                    None,
                    "ProtocolError",
                    str(exc),
                    self.lifecycle.state,
                    self.ladder.stage(),
                )
            )
        try:
            if request.op == "ping":
                return encode_line(self.readiness())
            if request.op == "stats":
                return encode_line(self.stats_payload(request.sections))
            return encode_line(self._respond_match(request))
        except Exception as exc:  # reprolint: disable=exception-taxonomy
            # The boundary invariant: no single request — however it
            # fails — may kill the handler loop or escape untyped.
            self.stats.record_error("InternalError")
            return encode_line(
                error_response(
                    request.id,
                    "InternalError",
                    f"{type(exc).__name__}: {exc}",
                    self.lifecycle.state,
                    self.ladder.stage(),
                )
            )

    def _respond_match(self, request: Request) -> dict[str, Any]:
        state = self.lifecycle.state
        stage = self.ladder.stage()
        if state == STATE_LOADING:
            self.stats.record_shed(SHED_LOADING)
            return shed_response(request.id, SHED_LOADING, state, stage)

        key = request.idempotency_key
        if key is not None:
            cached = self.idempotency.get(key)
            if cached is not None:
                self.stats.record_replay()
                return cached

        deadline_ms = request.deadline_ms
        if deadline_ms is None:
            deadline_ms = self.config.default_deadline_ms
        deadline = (
            Deadline.after(deadline_ms / 1000.0, clock=self._clock)
            if deadline_ms is not None
            else None
        )
        item = WorkItem(request, deadline, self._clock())
        self.stats.record_submitted(request.priority)
        if deadline is not None and deadline.expired():
            # The deadline was dead on arrival (a zero-or-negative
            # remainder): shed honestly instead of racing a worker for a
            # result nobody is waiting for.
            self.stats.record_shed(SHED_DEADLINE_EXPIRED)
            return shed_response(request.id, SHED_DEADLINE_EXPIRED, state, stage)
        try:
            self.queue.offer(item)
        except SheddedError as exc:
            self.stats.record_shed(exc.reason)
            return shed_response(
                request.id, exc.reason, self.lifecycle.state, self.ladder.stage()
            )

        payload = self._await_result(item, request, deadline)
        if key is not None and payload["outcome"] != "shed" and payload.get(
            "error_type"
        ) != "StuckWorkerTimeout":
            self.idempotency.put(key, payload)
        return payload

    def _await_result(
        self, item: WorkItem, request: Request, deadline: Deadline | None
    ) -> dict[str, Any]:
        """Block on the admitted item's resolution and shape the response."""
        timeout: float | None = None
        if deadline is not None:
            timeout = max(0.0, deadline.remaining()) + self.config.response_grace_s
        if not item.done.wait(timeout):
            # The worker holding this item went silent past deadline +
            # grace: answer the client instead of hanging the connection.
            self.stats.record_error("StuckWorkerTimeout")
            return error_response(
                request.id,
                "StuckWorkerTimeout",
                "request was admitted but no worker resolved it in time",
                self.lifecycle.state,
                self.ladder.stage(),
            )

        if item.shed_reason is not None:
            self.stats.record_shed(item.shed_reason)
            return shed_response(
                request.id,
                item.shed_reason,
                self.lifecycle.state,
                self.ladder.stage(),
            )
        if item.error_type is not None:
            self.stats.record_error(item.error_type)
            return error_response(
                request.id,
                item.error_type,
                item.error_message or item.error_type,
                self.lifecycle.state,
                self.ladder.stage(),
            )
        result = item.result
        assert result is not None  # complete() set exactly one of the three
        payload = result_response(
            request,
            result,
            item.requested_strategy,
            item.effective_strategy,
            item.stage,
            self.lifecycle.state,
            queue_wait_ms=item.queue_wait * 1000.0,
        )
        if payload["outcome"] == "completed":
            self.stats.record_completed()
        elif payload["outcome"] == "degraded":
            self.stats.record_degraded(str(payload.get("degraded_reason")))
        else:
            self.stats.record_error(str(payload.get("error_type")))
        return payload

    # ------------------------------------------------------------------
    # Workers + watchdog
    # ------------------------------------------------------------------

    def _worker_loop(self, name: str) -> None:
        engine = self._engine
        assert engine is not None  # start() resolved it before spawning us
        matcher = engine.worker_matcher()
        self.health.beat(name, busy=False)
        try:
            while not self._workers_stop.is_set():
                item = self.queue.take(self.config.idle_poll_s)
                if item is None:
                    self.health.beat(name, busy=False)
                    continue
                self.health.beat(name, busy=True)
                try:
                    self._execute(item, matcher)
                finally:
                    self.health.beat(name, busy=False)
        finally:
            self.health.deregister(name)

    def _execute(self, item: WorkItem, matcher: FuzzyMatcher) -> None:
        """Observability wrapper around :meth:`_execute_inner`.

        Records queue wait and per-stage service latency into the
        registry, and (when tracing is on) captures the request's span
        tree — a synthesized ``serve.queue_wait`` child plus whatever
        spans the matcher and storage layers open — annotated with the
        resolved outcome.
        """
        self._obs_queue_wait.observe(item.queue_wait)
        started = time.perf_counter()
        if self.config.trace_requests and self.registry.enabled:
            with self.tracer.trace(
                "request",
                op=item.request.op,
                id=item.request.id,
                priority=item.request.priority,
            ) as root:
                root.child("serve.queue_wait", duration_s=item.queue_wait)
                self._execute_inner(item, matcher)
                if item.shed_reason is not None:
                    root.annotate(outcome="shed", reason=item.shed_reason)
                elif item.error_type is not None:
                    root.annotate(outcome="error", error_type=item.error_type)
                else:
                    result = item.result
                    degraded = result is not None and result.stats.degraded
                    root.annotate(
                        outcome="degraded" if degraded else "completed",
                        strategy=item.effective_strategy,
                        stage=item.stage,
                    )
        else:
            self._execute_inner(item, matcher)
        stage = item.stage or self.ladder.stage()
        histogram = self._obs_request_seconds.get(stage)
        if histogram is not None:
            histogram.observe(time.perf_counter() - started)

    def _execute_inner(self, item: WorkItem, matcher: FuzzyMatcher) -> None:
        request = item.request
        if item.deadline is not None and item.deadline.expired():
            # The whole deadline was burned waiting in the queue; running
            # now can only produce an answer nobody is waiting for.
            item.shed(SHED_DEADLINE_EXPIRED)
            return

        stage, probe = self.ladder.stage_for_request()
        requested = request.strategy or self._default_strategy
        effective = (
            stage if STAGES.index(stage) > STAGES.index(requested) else requested
        )
        budget: QueryBudget | None = None
        if item.deadline is not None:
            budget = QueryBudget.from_deadline(
                item.deadline, self.config.max_page_fetches
            )
        elif self.config.max_page_fetches is not None:
            budget = QueryBudget(max_page_fetches=self.config.max_page_fetches)

        if self._before_execute is not None:
            self._before_execute(item)
        try:
            result = matcher.match(
                request.values,
                k=request.k,
                min_similarity=request.min_similarity,
                strategy=effective,
                budget=budget,
            )
        except (DatabaseError, ValueError) as exc:
            if probe is not None:
                probe.record_failure()
            item.fail(type(exc).__name__, str(exc) or type(exc).__name__)
            return
        if probe is not None:
            # The probe recloses its breaker only if the trial ran clean
            # AND the queue has actually calmed down; otherwise re-trip
            # and wait out another cooldown.
            if not result.stats.degraded and self.ladder.probe_succeeded(
                self.queue.p95_wait()
            ):
                probe.record_success()
            else:
                probe.record_failure()
        item.complete(result, requested, effective, stage)

    def _watchdog_loop(self) -> None:
        while not self._workers_stop.wait(self.config.watchdog_interval_s):
            self._govern()

    def _govern(self) -> None:
        """One governor tick: degrade on p95, shed bulk past the limit."""
        p95 = self.queue.p95_wait()
        tripped = self.ladder.observe(p95)
        if tripped is not None:
            self.stats.record_stage_trip()
        if p95 >= self.config.shed_p95_s:
            victims = self.queue.shed_bulk(SHED_OVERLOAD)
            if victims:
                self.stats.record_bulk_shed_sweep()


__all__ = [
    "EngineFactory",
    "IdempotencyCache",
    "MatchServer",
    "ServeConfig",
    "ServeError",
    "ServeStats",
]
