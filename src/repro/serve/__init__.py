"""Online serving layer: ``repro serve`` behind a typed overload contract.

The batch engine answers "how fast can we clean a file"; this package
answers "what happens when requests arrive faster than we can clean
them".  Every request resolves to exactly one of:

- **completed** — bit-identical to the offline matcher's answer;
- **degraded** — a best-effort answer with a stated reason (deadline,
  storage fault fallback, or the overload ladder's cheaper stage);
- **shed** — a typed refusal (queue full, displaced, deadline expired
  in queue, overload, draining, drain budget, loading) that never
  touched the engine;
- **error** — a typed failure (malformed request or an unabsorbed
  database error).

Modules: :mod:`~repro.serve.protocol` (wire format + shed vocabulary),
:mod:`~repro.serve.admission` (bounded priority queue),
:mod:`~repro.serve.lifecycle` (readiness, worker health, degradation
ladder), :mod:`~repro.serve.server` (the threaded server), and
:mod:`~repro.serve.client` (reference client).
"""

from repro.serve.admission import AdmissionQueue, ConnectionGate, WorkItem
from repro.serve.client import ClientTimeoutError, ServeClient
from repro.serve.lifecycle import (
    DegradationLadder,
    Lifecycle,
    LifecycleError,
    WorkerHealth,
)
from repro.serve.protocol import (
    PRIORITY_BULK,
    PRIORITY_INTERACTIVE,
    FrameError,
    FrameReader,
    FrameTooLargeError,
    PipelineOverflowError,
    ProtocolError,
    Request,
    ServeError,
    SheddedError,
    SlowFrameError,
    decode_request,
    encode_line,
)
from repro.serve.server import (
    IdempotencyCache,
    MatchServer,
    ServeConfig,
    ServeStats,
)

__all__ = [
    "AdmissionQueue",
    "ClientTimeoutError",
    "ConnectionGate",
    "DegradationLadder",
    "decode_request",
    "encode_line",
    "FrameError",
    "FrameReader",
    "FrameTooLargeError",
    "IdempotencyCache",
    "Lifecycle",
    "LifecycleError",
    "MatchServer",
    "PipelineOverflowError",
    "PRIORITY_BULK",
    "PRIORITY_INTERACTIVE",
    "ProtocolError",
    "Request",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "ServeStats",
    "SheddedError",
    "SlowFrameError",
    "WorkItem",
    "WorkerHealth",
]
