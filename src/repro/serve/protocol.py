"""The serve wire protocol: newline-delimited JSON over TCP.

One request per line, one response per line, UTF-8.  The protocol is
deliberately boring — any language's socket + JSON library is a client —
because the interesting contract is semantic, not syntactic: every
``match`` request resolves to exactly one of the overload trichotomy's
outcomes, and the response says which.

Request (``op`` selects the verb)::

    {"op": "match", "id": "q1", "values": ["Beoing Company", "Seattle",
     "WA", "98004"], "k": 1, "min_similarity": 0.0, "strategy": "osc",
     "deadline_ms": 100.0, "priority": "interactive"}
    {"op": "ping"}
    {"op": "stats"}
    {"op": "stats", "sections": ["serve", "metrics", "traces"]}

Response ``outcome`` values for ``op=match``:

- ``"completed"`` — exact answer, bit-identical to the offline matcher.
- ``"degraded"`` — best-effort answer: the request's deadline ran out
  mid-query, a storage fault forced the fallback chain, or the server's
  overload ladder forced a cheaper strategy than requested.
  ``degraded_reason`` says which; ``stage`` is the ladder stage it ran
  at.
- ``"shed"`` — the server refused to spend compute on the request.
  ``shed_reason`` is one of the ``SHED_*`` constants below; no partial
  answer is attached, the engine was never touched.
- ``"error"`` — a typed failure (``error_type``/``error``), either a
  malformed request (:class:`ProtocolError`) or a
  :class:`~repro.db.errors.DatabaseError` the resilience layer could not
  absorb.

Every response also carries the server's lifecycle ``state`` and current
degradation ``stage``, so clients see overload coming before they are
shed.

The byte boundary itself is defended by :class:`FrameReader`: per-frame
read deadlines, idle timeouts, a hard frame-size cap enforced during the
read, and a pipelining cap — every violation maps to a ``SHED_*`` reason
so hostile peers get the same typed vocabulary as overload does.  A
``match`` request may carry a client-generated ``idempotency_key``; the
server answers a retransmission of the same key from a bounded response
cache instead of running the engine twice.
"""

from __future__ import annotations

import json
import socket
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable

from repro.core.matcher import MatchResult

#: Protocol verbs.
OPS = ("match", "ping", "stats")

#: Sections a ``stats`` request may select.  ``serve`` is the server's
#: counter summary, ``metrics`` the merged registry snapshot (latency
#: histograms, cache/kernel counters), ``traces`` the recent/slow trace
#: capture.  Omitting ``sections`` yields ``("serve", "metrics")`` —
#: traces are opt-in because they are the bulky part.
STATS_SECTIONS = ("serve", "metrics", "traces")

#: Hard cap on the ``sections`` array length, so a hostile request
#: cannot make the server chew through an arbitrarily long list.
MAX_STATS_SECTIONS = 8

#: Request priority classes, best first.  ``interactive`` requests are
#: dequeued before ``bulk`` ones and may displace queued bulk work when
#: the admission queue is full.
PRIORITY_INTERACTIVE = "interactive"
PRIORITY_BULK = "bulk"
PRIORITIES = (PRIORITY_INTERACTIVE, PRIORITY_BULK)

#: Shed reasons (the typed vocabulary of refusal).
SHED_QUEUE_FULL = "queue_full"
"""The bounded admission queue was at capacity and nothing lower-priority
could be displaced."""
SHED_DISPLACED = "displaced"
"""A queued bulk request was evicted to admit an interactive one."""
SHED_DEADLINE_EXPIRED = "deadline_expired"
"""The request's deadline passed while it waited in the queue; the
engine was never invoked."""
SHED_OVERLOAD = "overload"
"""Queue-wait p95 crossed the shed threshold and bulk work was dropped."""
SHED_DRAINING = "draining"
"""The server is draining (SIGTERM received); new work is refused."""
SHED_DRAIN_BUDGET = "drain_budget"
"""The request was still queued when the drain budget ran out."""
SHED_LOADING = "loading"
"""The server is still building/loading its warehouse; retry shortly."""
SHED_FRAME_TOO_LARGE = "frame_too_large"
"""A request line exceeded ``max_frame_bytes``.  The overflow was drained
from the socket without being buffered and the frame was refused; the
connection stays usable when the frame's end was found within bounds."""
SHED_SLOW_FRAME = "slow_frame"
"""A partial frame stalled past the per-frame read deadline (the
slowloris pattern); the connection is closed after this response."""
SHED_PIPELINE_OVERFLOW = "pipeline_overflow"
"""More unanswered pipelined frames than the per-connection cap; the
connection is closed after this response."""
SHED_TOO_MANY_CONNECTIONS = "too_many_connections"
"""The global or per-peer connection limit was reached; the connection
was refused before any request bytes were read."""

SHED_REASONS = (
    SHED_QUEUE_FULL,
    SHED_DISPLACED,
    SHED_DEADLINE_EXPIRED,
    SHED_OVERLOAD,
    SHED_DRAINING,
    SHED_DRAIN_BUDGET,
    SHED_LOADING,
    SHED_FRAME_TOO_LARGE,
    SHED_SLOW_FRAME,
    SHED_PIPELINE_OVERFLOW,
    SHED_TOO_MANY_CONNECTIONS,
)

#: Shed reasons a client may retry against the *same* server after
#: backing off; the rest are either per-request verdicts (deadline) or
#: tell the client to go elsewhere (draining).
RETRYABLE_SHED_REASONS = (SHED_QUEUE_FULL, SHED_OVERLOAD, SHED_LOADING)


class ServeError(Exception):
    """Base class for serving-layer errors."""


class ProtocolError(ServeError):
    """A request line could not be parsed or validated."""


class SheddedError(ServeError):
    """The server refused a request instead of queueing it unboundedly.

    ``reason`` is one of the ``SHED_*`` constants — clients branch on it
    (retry with backoff on ``queue_full``/``overload``, fail over on
    ``draining``), never on message text.
    """

    def __init__(self, reason: str, message: str = "") -> None:
        super().__init__(message or reason)
        self.reason = reason


class FrameError(ServeError):
    """A wire-boundary violation caught while framing inbound bytes.

    ``recoverable`` says whether the connection is still usable after the
    offending frame was refused (the handler sends a typed shed response
    either way, then continues or disconnects accordingly).
    """

    def __init__(self, message: str, recoverable: bool) -> None:
        super().__init__(message)
        self.recoverable = recoverable


class FrameTooLargeError(FrameError):
    """A single request line exceeded ``max_frame_bytes``."""


class SlowFrameError(FrameError):
    """A partial frame stalled past the per-frame read deadline."""

    def __init__(self, message: str) -> None:
        super().__init__(message, recoverable=False)


class PipelineOverflowError(FrameError):
    """A connection pipelined more unanswered frames than its cap."""

    def __init__(self, message: str) -> None:
        super().__init__(message, recoverable=False)


class FrameReader:
    """Newline framing over a socket with defense-in-depth read limits.

    The undefended predecessor (``conn.makefile("rb")`` + line iteration)
    would buffer an arbitrarily long line in memory and block on a stalled
    peer forever.  This reader enforces, per connection:

    - ``max_frame_bytes``: a hard cap on one request line, checked *while*
      reading.  An oversized line is drained from the socket (up to
      ``oversize_drain_bytes``, never buffered) looking for its newline;
      :class:`FrameTooLargeError` is raised in frame order, recoverable
      when the line's end was found so the connection can continue.
    - ``frame_timeout_s``: once the first byte of a frame arrives, the
      whole line must arrive within this budget or
      :class:`SlowFrameError` is raised — a 1 byte/s slowloris peer is
      disconnected after this deadline, not held open indefinitely.
    - ``idle_timeout_s``: a connection with no partial frame that stays
      silent this long is treated as gone (:meth:`next_frame` returns
      ``None``, like EOF).
    - ``max_pipelined_frames``: a cap on decoded-but-unanswered frames
      buffered ahead of the handler; beyond it
      :class:`PipelineOverflowError` is raised.

    Memory stays bounded by ``max_frame_bytes`` plus one receive chunk
    regardless of peer behaviour.  ``clock`` is injectable for tests.
    """

    _RECV_CHUNK = 65536

    def __init__(
        self,
        sock: socket.socket,
        *,
        max_frame_bytes: int = 1 << 20,
        frame_timeout_s: float = 10.0,
        idle_timeout_s: float = 300.0,
        max_pipelined_frames: int = 32,
        oversize_drain_bytes: int = 1 << 20,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_frame_bytes < 1:
            raise ValueError("max_frame_bytes must be >= 1")
        if frame_timeout_s <= 0 or idle_timeout_s <= 0:
            raise ValueError("frame/idle timeouts must be positive")
        if max_pipelined_frames < 1:
            raise ValueError("max_pipelined_frames must be >= 1")
        if oversize_drain_bytes < 0:
            raise ValueError("oversize_drain_bytes must be >= 0")
        self._sock = sock
        self.max_frame_bytes = max_frame_bytes
        self.frame_timeout_s = frame_timeout_s
        self.idle_timeout_s = idle_timeout_s
        self.max_pipelined_frames = max_pipelined_frames
        self.oversize_drain_bytes = oversize_drain_bytes
        self._clock = clock
        self._buffer = bytearray()
        # ``None`` entries mark oversized frames, reported in arrival order.
        self._frames: deque[bytes | None] = deque()
        self._frame_deadline: float | None = None
        self._eof = False

    def next_frame(self) -> bytes | None:
        """Block for the next complete line (without its newline).

        Returns ``None`` on EOF or idle timeout.  Raises a
        :class:`FrameError` subclass on a boundary violation and lets the
        socket's own ``OSError`` (reset, close) propagate.
        """
        while True:
            if self._frames:
                frame = self._frames.popleft()
                if frame is None:
                    raise FrameTooLargeError(
                        f"frame exceeds max_frame_bytes={self.max_frame_bytes}",
                        recoverable=True,
                    )
                return frame
            if self._eof:
                return None
            self._fill()

    def _fill(self) -> None:
        """One receive step: read, split into frames, enforce the limits."""
        if self._frame_deadline is not None:
            budget = self._frame_deadline - self._clock()
            if budget <= 0:
                raise SlowFrameError(
                    f"partial frame stalled past {self.frame_timeout_s}s"
                )
            self._sock.settimeout(budget)
        else:
            self._sock.settimeout(self.idle_timeout_s)
        try:
            chunk = self._sock.recv(self._RECV_CHUNK)
        except TimeoutError:
            if self._frame_deadline is not None:
                raise SlowFrameError(
                    f"partial frame stalled past {self.frame_timeout_s}s"
                ) from None
            self._eof = True  # idle with no request in flight: quiet close
            return
        if not chunk:
            self._eof = True
            if self._buffer:  # unterminated trailing line still answers
                self._queue_frame(bytes(self._buffer))
                self._buffer.clear()
                self._frame_deadline = None
            return
        if self._frame_deadline is None:
            self._frame_deadline = self._clock() + self.frame_timeout_s
        self._buffer.extend(chunk)
        self._split()
        if len(self._buffer) > self.max_frame_bytes:
            self._drain_oversize()

    def _split(self) -> None:
        """Move complete lines out of the byte buffer, in arrival order."""
        extracted = False
        while True:
            newline = self._buffer.find(b"\n")
            if newline < 0:
                break
            self._queue_frame(bytes(self._buffer[:newline]))
            del self._buffer[: newline + 1]
            extracted = True
        if not self._buffer:
            self._frame_deadline = None
        elif extracted:  # the partial tail is a fresh frame: fresh budget
            self._frame_deadline = self._clock() + self.frame_timeout_s

    def _queue_frame(self, frame: bytes) -> None:
        """Queue one complete frame (or its oversize marker)."""
        self._frames.append(frame if len(frame) <= self.max_frame_bytes else None)
        if len(self._frames) > self.max_pipelined_frames:
            raise PipelineOverflowError(
                f"more than max_pipelined_frames={self.max_pipelined_frames} "
                "unanswered frames"
            )

    def _drain_oversize(self) -> None:
        """Discard an over-cap partial line while hunting for its end.

        Keeps reading (and throwing away) up to ``oversize_drain_bytes``
        within a fresh frame budget.  Finding the newline queues an
        oversize marker and preserves the bytes after it, so the
        connection recovers; hitting the drain cap, the deadline, or EOF
        gives up with a non-recoverable :class:`FrameTooLargeError`.
        """
        # The over-cap partial already in the buffer counts against the
        # drain budget — a peer that stops sending mid-flood must not be
        # granted a fresh allowance to wait out.
        drained = len(self._buffer)
        self._buffer.clear()
        deadline = self._clock() + self.frame_timeout_s
        while drained <= self.oversize_drain_bytes:
            budget = deadline - self._clock()
            if budget <= 0:
                break
            self._sock.settimeout(budget)
            try:
                chunk = self._sock.recv(self._RECV_CHUNK)
            except TimeoutError:
                break
            if not chunk:
                self._eof = True
                break
            newline = chunk.find(b"\n")
            if newline >= 0:
                self._frames.append(None)  # the oversized frame, in order
                self._buffer.extend(chunk[newline + 1 :])
                self._frame_deadline = (
                    self._clock() + self.frame_timeout_s if self._buffer else None
                )
                self._split()
                return
            drained += len(chunk)
        raise FrameTooLargeError(
            f"frame exceeds max_frame_bytes={self.max_frame_bytes} "
            "and its end was not found within the drain budget",
            recoverable=False,
        )


@dataclass(frozen=True)
class Request:
    """One decoded, validated request line."""

    op: str
    id: str | None = None
    values: tuple[str | None, ...] = ()
    k: int | None = None
    min_similarity: float | None = None
    strategy: str | None = None
    deadline_ms: float | None = None
    priority: str = PRIORITY_INTERACTIVE
    idempotency_key: str | None = None
    sections: tuple[str, ...] | None = None
    """For ``op=stats``: which payload sections to return (validated
    against :data:`STATS_SECTIONS`); ``None`` means the default set."""


#: Idempotency keys are client-generated opaque tokens; cap their length
#: so the server's dedup cache cannot be ballooned by one hostile client.
MAX_IDEMPOTENCY_KEY_CHARS = 128


def _decode_sections(payload: dict[str, Any]) -> tuple[str, ...] | None:
    """Validate a stats request's ``sections`` field (the fuzz surface).

    Every entry must be a known section name; the list is bounded and
    deduplicated preserving order.  ``None`` (absent) selects the
    default set downstream.
    """
    raw_sections = payload.get("sections")
    if raw_sections is None:
        return None
    if not isinstance(raw_sections, list) or not raw_sections:
        raise ProtocolError("'sections' must be a non-empty array")
    if len(raw_sections) > MAX_STATS_SECTIONS:
        raise ProtocolError(
            f"'sections' may list at most {MAX_STATS_SECTIONS} entries"
        )
    seen: list[str] = []
    for section in raw_sections:
        if not isinstance(section, str) or section not in STATS_SECTIONS:
            raise ProtocolError(
                f"'sections' entries must be one of {STATS_SECTIONS}, "
                f"got {section!r}"
            )
        if section not in seen:
            seen.append(section)
    return tuple(seen)


def decode_request(line: str | bytes) -> Request:
    """Parse and validate one request line; raises :class:`ProtocolError`.

    Invalid UTF-8 is a protocol error like any other malformed input —
    ``json.loads`` raises :class:`UnicodeDecodeError` (not
    ``JSONDecodeError``) for it, and letting that escape used to kill the
    server's handler thread without a response.
    """
    try:
        payload = json.loads(line)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"request is not valid UTF-8 JSON: {exc}") from exc
    except RecursionError as exc:
        # A pathologically nested document (fuzz finding): the stdlib
        # parser recurses per nesting level; fail typed, not with a
        # blown stack.
        raise ProtocolError("request JSON is nested too deeply") from exc
    if not isinstance(payload, dict):
        raise ProtocolError("request must be a JSON object")
    op = payload.get("op")
    if op not in OPS:
        raise ProtocolError(f"op must be one of {OPS}, got {op!r}")
    request_id = payload.get("id")
    if request_id is not None and not isinstance(request_id, str):
        raise ProtocolError("id must be a string when present")
    if op == "stats":
        return Request(
            op=op, id=request_id, sections=_decode_sections(payload)
        )
    if op != "match":
        return Request(op=op, id=request_id)

    raw_values = payload.get("values")
    if not isinstance(raw_values, list) or not raw_values:
        raise ProtocolError("match needs a non-empty 'values' array")
    for cell in raw_values:
        if cell is not None and not isinstance(cell, str):
            raise ProtocolError("'values' entries must be strings or null")
    k = payload.get("k")
    if k is not None and (not isinstance(k, int) or isinstance(k, bool) or k < 1):
        raise ProtocolError("k must be a positive integer")
    min_similarity = payload.get("min_similarity")
    if min_similarity is not None:
        if not isinstance(min_similarity, (int, float)) or isinstance(
            min_similarity, bool
        ):
            raise ProtocolError("min_similarity must be a number")
        min_similarity = float(min_similarity)
    strategy = payload.get("strategy")
    if strategy is not None and strategy not in ("naive", "basic", "osc"):
        raise ProtocolError(
            f"strategy must be 'naive', 'basic', or 'osc', got {strategy!r}"
        )
    deadline_ms = payload.get("deadline_ms")
    if deadline_ms is not None:
        if (
            not isinstance(deadline_ms, (int, float))
            or isinstance(deadline_ms, bool)
            or deadline_ms <= 0
        ):
            raise ProtocolError("deadline_ms must be a positive number")
        deadline_ms = float(deadline_ms)
    priority = payload.get("priority", PRIORITY_INTERACTIVE)
    if priority not in PRIORITIES:
        raise ProtocolError(
            f"priority must be one of {PRIORITIES}, got {priority!r}"
        )
    idempotency_key = payload.get("idempotency_key")
    if idempotency_key is not None:
        if (
            not isinstance(idempotency_key, str)
            or not idempotency_key
            or len(idempotency_key) > MAX_IDEMPOTENCY_KEY_CHARS
        ):
            raise ProtocolError(
                "idempotency_key must be a non-empty string of at most "
                f"{MAX_IDEMPOTENCY_KEY_CHARS} characters"
            )
    return Request(
        op="match",
        id=request_id,
        values=tuple(raw_values),
        k=k,
        min_similarity=min_similarity,
        strategy=strategy,
        deadline_ms=deadline_ms,
        priority=priority,
        idempotency_key=idempotency_key,
    )


def encode_line(payload: dict[str, Any]) -> bytes:
    """One response (or request) as a newline-terminated JSON line."""
    return (json.dumps(payload, separators=(",", ":")) + "\n").encode("utf-8")


def result_response(
    request: Request,
    result: MatchResult,
    requested_strategy: str,
    effective_strategy: str,
    stage: str,
    state: str,
    queue_wait_ms: float,
) -> dict[str, Any]:
    """The response for a request the engine actually ran.

    ``outcome`` is ``"degraded"`` when the matcher flagged the result
    degraded (budget/fallback), when the overload ladder forced a
    cheaper strategy than the client asked for, or — for a faulted query
    under per-item isolation — ``"error"`` with the typed error class.
    """
    if result.failed:
        return {
            "id": request.id,
            "ok": False,
            "outcome": "error",
            "error_type": result.error_type,
            "error": result.error,
            "state": state,
            "stage": stage,
            "queue_wait_ms": round(queue_wait_ms, 3),
        }
    downgraded = effective_strategy != requested_strategy
    degraded = result.stats.degraded or downgraded
    reason = result.stats.degraded_reason
    if reason is None and downgraded:
        reason = f"overload_stage:{effective_strategy}"
    response: dict[str, Any] = {
        "id": request.id,
        "ok": True,
        "outcome": "degraded" if degraded else "completed",
        "matches": [
            {
                "tid": match.tid,
                "similarity": match.similarity,
                "values": list(match.values),
            }
            for match in result.matches
        ],
        "strategy": result.stats.strategy,
        "state": state,
        "stage": stage,
        "queue_wait_ms": round(queue_wait_ms, 3),
    }
    if degraded:
        response["degraded_reason"] = reason
    return response


def shed_response(
    request_id: str | None, reason: str, state: str, stage: str
) -> dict[str, Any]:
    """The response for a request the server refused to run."""
    return {
        "id": request_id,
        "ok": False,
        "outcome": "shed",
        "error_type": "SheddedError",
        "shed_reason": reason,
        "state": state,
        "stage": stage,
    }


def error_response(
    request_id: str | None,
    error_type: str,
    message: str,
    state: str,
    stage: str,
) -> dict[str, Any]:
    """The response for a malformed or failed request."""
    return {
        "id": request_id,
        "ok": False,
        "outcome": "error",
        "error_type": error_type,
        "error": message,
        "state": state,
        "stage": stage,
    }
