"""The serve wire protocol: newline-delimited JSON over TCP.

One request per line, one response per line, UTF-8.  The protocol is
deliberately boring — any language's socket + JSON library is a client —
because the interesting contract is semantic, not syntactic: every
``match`` request resolves to exactly one of the overload trichotomy's
outcomes, and the response says which.

Request (``op`` selects the verb)::

    {"op": "match", "id": "q1", "values": ["Beoing Company", "Seattle",
     "WA", "98004"], "k": 1, "min_similarity": 0.0, "strategy": "osc",
     "deadline_ms": 100.0, "priority": "interactive"}
    {"op": "ping"}
    {"op": "stats"}

Response ``outcome`` values for ``op=match``:

- ``"completed"`` — exact answer, bit-identical to the offline matcher.
- ``"degraded"`` — best-effort answer: the request's deadline ran out
  mid-query, a storage fault forced the fallback chain, or the server's
  overload ladder forced a cheaper strategy than requested.
  ``degraded_reason`` says which; ``stage`` is the ladder stage it ran
  at.
- ``"shed"`` — the server refused to spend compute on the request.
  ``shed_reason`` is one of the ``SHED_*`` constants below; no partial
  answer is attached, the engine was never touched.
- ``"error"`` — a typed failure (``error_type``/``error``), either a
  malformed request (:class:`ProtocolError`) or a
  :class:`~repro.db.errors.DatabaseError` the resilience layer could not
  absorb.

Every response also carries the server's lifecycle ``state`` and current
degradation ``stage``, so clients see overload coming before they are
shed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any

from repro.core.matcher import MatchResult

#: Protocol verbs.
OPS = ("match", "ping", "stats")

#: Request priority classes, best first.  ``interactive`` requests are
#: dequeued before ``bulk`` ones and may displace queued bulk work when
#: the admission queue is full.
PRIORITY_INTERACTIVE = "interactive"
PRIORITY_BULK = "bulk"
PRIORITIES = (PRIORITY_INTERACTIVE, PRIORITY_BULK)

#: Shed reasons (the typed vocabulary of refusal).
SHED_QUEUE_FULL = "queue_full"
"""The bounded admission queue was at capacity and nothing lower-priority
could be displaced."""
SHED_DISPLACED = "displaced"
"""A queued bulk request was evicted to admit an interactive one."""
SHED_DEADLINE_EXPIRED = "deadline_expired"
"""The request's deadline passed while it waited in the queue; the
engine was never invoked."""
SHED_OVERLOAD = "overload"
"""Queue-wait p95 crossed the shed threshold and bulk work was dropped."""
SHED_DRAINING = "draining"
"""The server is draining (SIGTERM received); new work is refused."""
SHED_DRAIN_BUDGET = "drain_budget"
"""The request was still queued when the drain budget ran out."""
SHED_LOADING = "loading"
"""The server is still building/loading its warehouse; retry shortly."""

SHED_REASONS = (
    SHED_QUEUE_FULL,
    SHED_DISPLACED,
    SHED_DEADLINE_EXPIRED,
    SHED_OVERLOAD,
    SHED_DRAINING,
    SHED_DRAIN_BUDGET,
    SHED_LOADING,
)


class ServeError(Exception):
    """Base class for serving-layer errors."""


class ProtocolError(ServeError):
    """A request line could not be parsed or validated."""


class SheddedError(ServeError):
    """The server refused a request instead of queueing it unboundedly.

    ``reason`` is one of the ``SHED_*`` constants — clients branch on it
    (retry with backoff on ``queue_full``/``overload``, fail over on
    ``draining``), never on message text.
    """

    def __init__(self, reason: str, message: str = "") -> None:
        super().__init__(message or reason)
        self.reason = reason


@dataclass(frozen=True)
class Request:
    """One decoded, validated request line."""

    op: str
    id: str | None = None
    values: tuple[str | None, ...] = ()
    k: int | None = None
    min_similarity: float | None = None
    strategy: str | None = None
    deadline_ms: float | None = None
    priority: str = PRIORITY_INTERACTIVE


def decode_request(line: str | bytes) -> Request:
    """Parse and validate one request line; raises :class:`ProtocolError`."""
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"request is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError("request must be a JSON object")
    op = payload.get("op")
    if op not in OPS:
        raise ProtocolError(f"op must be one of {OPS}, got {op!r}")
    request_id = payload.get("id")
    if request_id is not None and not isinstance(request_id, str):
        raise ProtocolError("id must be a string when present")
    if op != "match":
        return Request(op=op, id=request_id)

    raw_values = payload.get("values")
    if not isinstance(raw_values, list) or not raw_values:
        raise ProtocolError("match needs a non-empty 'values' array")
    for cell in raw_values:
        if cell is not None and not isinstance(cell, str):
            raise ProtocolError("'values' entries must be strings or null")
    k = payload.get("k")
    if k is not None and (not isinstance(k, int) or isinstance(k, bool) or k < 1):
        raise ProtocolError("k must be a positive integer")
    min_similarity = payload.get("min_similarity")
    if min_similarity is not None:
        if not isinstance(min_similarity, (int, float)) or isinstance(
            min_similarity, bool
        ):
            raise ProtocolError("min_similarity must be a number")
        min_similarity = float(min_similarity)
    strategy = payload.get("strategy")
    if strategy is not None and strategy not in ("naive", "basic", "osc"):
        raise ProtocolError(
            f"strategy must be 'naive', 'basic', or 'osc', got {strategy!r}"
        )
    deadline_ms = payload.get("deadline_ms")
    if deadline_ms is not None:
        if (
            not isinstance(deadline_ms, (int, float))
            or isinstance(deadline_ms, bool)
            or deadline_ms <= 0
        ):
            raise ProtocolError("deadline_ms must be a positive number")
        deadline_ms = float(deadline_ms)
    priority = payload.get("priority", PRIORITY_INTERACTIVE)
    if priority not in PRIORITIES:
        raise ProtocolError(
            f"priority must be one of {PRIORITIES}, got {priority!r}"
        )
    return Request(
        op="match",
        id=request_id,
        values=tuple(raw_values),
        k=k,
        min_similarity=min_similarity,
        strategy=strategy,
        deadline_ms=deadline_ms,
        priority=priority,
    )


def encode_line(payload: dict[str, Any]) -> bytes:
    """One response (or request) as a newline-terminated JSON line."""
    return (json.dumps(payload, separators=(",", ":")) + "\n").encode("utf-8")


def result_response(
    request: Request,
    result: MatchResult,
    requested_strategy: str,
    effective_strategy: str,
    stage: str,
    state: str,
    queue_wait_ms: float,
) -> dict[str, Any]:
    """The response for a request the engine actually ran.

    ``outcome`` is ``"degraded"`` when the matcher flagged the result
    degraded (budget/fallback), when the overload ladder forced a
    cheaper strategy than the client asked for, or — for a faulted query
    under per-item isolation — ``"error"`` with the typed error class.
    """
    if result.failed:
        return {
            "id": request.id,
            "ok": False,
            "outcome": "error",
            "error_type": result.error_type,
            "error": result.error,
            "state": state,
            "stage": stage,
            "queue_wait_ms": round(queue_wait_ms, 3),
        }
    downgraded = effective_strategy != requested_strategy
    degraded = result.stats.degraded or downgraded
    reason = result.stats.degraded_reason
    if reason is None and downgraded:
        reason = f"overload_stage:{effective_strategy}"
    response: dict[str, Any] = {
        "id": request.id,
        "ok": True,
        "outcome": "degraded" if degraded else "completed",
        "matches": [
            {
                "tid": match.tid,
                "similarity": match.similarity,
                "values": list(match.values),
            }
            for match in result.matches
        ],
        "strategy": result.stats.strategy,
        "state": state,
        "stage": stage,
        "queue_wait_ms": round(queue_wait_ms, 3),
    }
    if degraded:
        response["degraded_reason"] = reason
    return response


def shed_response(
    request_id: str | None, reason: str, state: str, stage: str
) -> dict[str, Any]:
    """The response for a request the server refused to run."""
    return {
        "id": request_id,
        "ok": False,
        "outcome": "shed",
        "error_type": "SheddedError",
        "shed_reason": reason,
        "state": state,
        "stage": stage,
    }


def error_response(
    request_id: str | None,
    error_type: str,
    message: str,
    state: str,
    stage: str,
) -> dict[str, Any]:
    """The response for a malformed or failed request."""
    return {
        "id": request_id,
        "ok": False,
        "outcome": "error",
        "error_type": error_type,
        "error": message,
        "state": state,
        "stage": stage,
    }
